package faults

import (
	"sort"

	"nlfl/internal/dessim"
	"nlfl/internal/platform"
	"nlfl/internal/stats"
)

// Injector binds a Scenario to a dessim.Engine: it schedules the
// scenario's crash and recovery instants as engine events, maintains the
// live/dead state of every worker, and answers capacity and transfer-drop
// queries for whichever executor is running on the same engine.
type Injector struct {
	eng       *dessim.Engine
	sc        Scenario
	avail     *platform.Availability
	alive     []bool
	rng       *stats.RNG
	onCrash   []func(worker int, permanent bool)
	onRecover []func(worker int)
	armed     bool
}

// NewInjector validates the scenario against a p-worker platform and
// prepares (but does not yet schedule) the injection.
func NewInjector(eng *dessim.Engine, p int, sc Scenario) (*Injector, error) {
	avail, err := sc.Availability(p)
	if err != nil {
		return nil, err
	}
	alive := make([]bool, p)
	for i := range alive {
		alive[i] = true
	}
	return &Injector{
		eng:   eng,
		sc:    sc,
		avail: avail,
		alive: alive,
		rng:   stats.NewRNG(sc.Seed),
	}, nil
}

// OnCrash registers a callback fired at each crash instant (permanent or
// transient), after the injector has marked the worker dead. Register
// before Arm.
func (in *Injector) OnCrash(f func(worker int, permanent bool)) {
	in.onCrash = append(in.onCrash, f)
}

// OnRecover registers a callback fired at each transient recovery, after
// the injector has marked the worker live again.
func (in *Injector) OnRecover(f func(worker int)) {
	in.onRecover = append(in.onRecover, f)
}

// Arm schedules the scenario's state-changing instants on the engine.
// Events are scheduled in deterministic (time, worker, kind) order so the
// engine's FIFO tie-break is reproducible. Arm may be called once.
func (in *Injector) Arm() {
	if in.armed {
		panic("faults: injector armed twice")
	}
	in.armed = true
	type instant struct {
		time      float64
		worker    int
		recover   bool
		permanent bool
	}
	var is []instant
	for _, e := range in.sc.Events {
		switch e.Kind {
		case Crash:
			is = append(is, instant{time: e.Time, worker: e.Worker, permanent: true})
		case Transient:
			is = append(is, instant{time: e.Time, worker: e.Worker})
			is = append(is, instant{time: e.Until, worker: e.Worker, recover: true})
		}
	}
	sort.SliceStable(is, func(a, b int) bool {
		if is[a].time != is[b].time {
			return is[a].time < is[b].time
		}
		return is[a].worker < is[b].worker
	})
	for _, inst := range is {
		inst := inst
		in.eng.At(inst.time, func() {
			if inst.recover {
				// A permanent crash in the meantime wins over a scheduled
				// recovery (the worker stays dead).
				if in.avail.PermanentlyDownBy(inst.worker, in.eng.Now()) {
					return
				}
				in.alive[inst.worker] = true
				for _, f := range in.onRecover {
					f(inst.worker)
				}
				return
			}
			if !in.alive[inst.worker] {
				return // already down: duplicate crash is a no-op
			}
			in.alive[inst.worker] = false
			for _, f := range in.onCrash {
				f(inst.worker, inst.permanent)
			}
		})
	}
}

// Alive reports whether worker w is up right now (engine time).
func (in *Injector) Alive(w int) bool { return in.alive[w] }

// Availability exposes the compiled time-varying capacity profile.
func (in *Injector) Availability() *platform.Availability { return in.avail }

// DropTransfer decides whether a transfer to worker w starting at time t
// is lost. The decision consumes the scenario RNG only when (w, t) falls
// inside a LinkDrop window, so runs without flaky links stay bit-identical
// regardless of seed.
func (in *Injector) DropTransfer(w int, t float64) bool {
	for _, e := range in.sc.Events {
		if e.Kind == LinkDrop && e.Worker == w && t >= e.Time && t < e.Until {
			if in.rng.Float64() < e.DropProb {
				return true
			}
		}
	}
	return false
}
