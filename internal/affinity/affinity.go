// Package affinity implements the mechanism the paper *proposes* in its
// conclusion: "adding directives in order to declare affinities between
// tasks and data ... favoring among all available tasks on the master
// those that share blocks with data already stored on a slave processor
// in the demand-driven process would improve the results."
//
// The setting is the Section 4.1 outer product cut into g×g identical
// square blocks (the Homogeneous Blocks task shape): block (i, j) needs
// chunk i of vector a and chunk j of vector b, each of N/g elements.
// Three demand-driven masters are compared:
//
//   - PolicyNoCache: plain MapReduce accounting — every block ships its
//     full 2N/g of data (the Comm_hom/k model).
//   - PolicyCache: workers keep every chunk they have received; the
//     master still hands out blocks in scan order, so reuse only happens
//     by luck.
//   - PolicyAffinity: workers cache chunks AND the master serves each
//     request with a remaining block that minimizes the data the worker
//     is missing (ties: scan order) — the paper's proposed directive.
//
// The experiment shows PolicyAffinity recovering most of the gap between
// MapReduce-style distribution and the Heterogeneous Blocks layout while
// remaining fully demand-driven (no platform knowledge in advance).
package affinity

import (
	"errors"
	"fmt"
	"math"

	"nlfl/internal/platform"
)

// Policy selects the master's task-assignment rule.
type Policy int

// Available policies.
const (
	// PolicyNoCache ships every block's data in full (no worker state).
	PolicyNoCache Policy = iota
	// PolicyCache keeps received chunks but assigns blocks in scan order.
	PolicyCache
	// PolicyAffinity keeps chunks and assigns each worker the remaining
	// block needing the least new data.
	PolicyAffinity
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyNoCache:
		return "no-cache"
	case PolicyCache:
		return "cache"
	case PolicyAffinity:
		return "affinity"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Result reports one demand-driven run.
type Result struct {
	Policy Policy
	// Grid is g: the domain was g×g blocks.
	Grid int
	// Volume is the total data shipped, in vector elements.
	Volume float64
	// LowerBound is 2N·Σ√xᵢ (same reference as package outer).
	LowerBound float64
	// Ratio is Volume/LowerBound.
	Ratio float64
	// Imbalance is (t_max-t_min)/t_min over per-worker compute times.
	Imbalance float64
	// BlocksPerWorker counts assignments.
	BlocksPerWorker []int
}

// String renders the result.
func (r Result) String() string {
	return fmt.Sprintf("%-9s g=%-4d volume=%.4g ratio=%.3f e=%.3g",
		r.Policy, r.Grid, r.Volume, r.Ratio, r.Imbalance)
}

// Run simulates a demand-driven outer product of size n on the platform,
// with the domain cut into g×g blocks and the given assignment policy.
// Workers request a block whenever idle (all start at time 0, ties by
// index); a block's compute time is its area divided by the worker's
// speed; data transfer is accounted by volume (the Figure 4 currency) and
// does not extend the timeline.
func Run(pl *platform.Platform, n float64, g int, policy Policy) (Result, error) {
	if g <= 0 {
		return Result{}, errors.New("affinity: grid must be positive")
	}
	if n <= 0 || math.IsNaN(n) {
		return Result{}, fmt.Errorf("affinity: invalid size %v", n)
	}
	p := pl.P()
	chunk := n / float64(g)     // one vector chunk, in elements
	blockWork := chunk * chunk  // block compute cost
	remaining := g * g          // unassigned blocks
	taken := make([]bool, g*g)  // block (i,j) at i*g+j
	aCache := make([][]bool, p) // aCache[w][i]: worker w holds a-chunk i
	bCache := make([][]bool, p)
	for w := 0; w < p; w++ {
		aCache[w] = make([]bool, g)
		bCache[w] = make([]bool, g)
	}
	free := make([]float64, p) // next idle time per worker
	busy := make([]float64, p)
	counts := make([]int, p)
	volume := 0.0
	scan := 0 // next unassigned block in scan order

	// need returns the data volume worker w is missing for block (i,j).
	need := func(w, i, j int) float64 {
		d := 0.0
		if !aCache[w][i] {
			d += chunk
		}
		if !bCache[w][j] {
			d += chunk
		}
		return d
	}

	for remaining > 0 {
		// Next request: idle-earliest worker, ties by index.
		w := 0
		for cand := 1; cand < p; cand++ {
			if free[cand] < free[w] {
				w = cand
			}
		}
		// Pick a block for w.
		var block int
		switch policy {
		case PolicyNoCache, PolicyCache:
			for taken[scan] {
				scan++
			}
			block = scan
		case PolicyAffinity:
			best, bestNeed := -1, math.Inf(1)
			for idx := 0; idx < g*g; idx++ {
				if taken[idx] {
					continue
				}
				d := need(w, idx/g, idx%g)
				if d < bestNeed {
					best, bestNeed = idx, d
					if d == 0 {
						break
					}
				}
			}
			block = best
		default:
			return Result{}, fmt.Errorf("affinity: unknown policy %v", policy)
		}
		taken[block] = true
		remaining--
		i, j := block/g, block%g
		switch policy {
		case PolicyNoCache:
			volume += 2 * chunk
		default:
			volume += need(w, i, j)
			aCache[w][i] = true
			bCache[w][j] = true
		}
		dur := blockWork / pl.Worker(w).Speed
		free[w] += dur
		busy[w] += dur
		counts[w]++
	}

	lb := 0.0
	for _, x := range pl.NormalizedSpeeds() {
		lb += math.Sqrt(x)
	}
	lb *= 2 * n
	res := Result{
		Policy:          policy,
		Grid:            g,
		Volume:          volume,
		LowerBound:      lb,
		Ratio:           volume / lb,
		Imbalance:       imbalance(busy),
		BlocksPerWorker: counts,
	}
	return res, nil
}

// imbalance is (max-min)/min over positive times (+Inf if a worker idles,
// 0 when nothing ran).
func imbalance(ts []float64) float64 {
	tmin, tmax := math.Inf(1), 0.0
	for _, t := range ts {
		if t < tmin {
			tmin = t
		}
		if t > tmax {
			tmax = t
		}
	}
	if tmax == 0 {
		return 0
	}
	if tmin == 0 {
		return math.Inf(1)
	}
	return (tmax - tmin) / tmin
}

// Compare runs all three policies with identical parameters.
func Compare(pl *platform.Platform, n float64, g int) ([]Result, error) {
	out := make([]Result, 0, 3)
	for _, pol := range []Policy{PolicyNoCache, PolicyCache, PolicyAffinity} {
		r, err := Run(pl, n, g, pol)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
