package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"runtime/pprof"

	"nlfl/internal/bench"
	"nlfl/internal/results"
)

// benchContext is the cancellation root of every sweep: the first SIGINT
// cancels it (sweeps stop at the next boundary with nothing written), a
// second SIGINT kills the process the usual way.
func benchContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt)
}

// runBench drives the measured-performance harness: tiled kernels, the
// demand-driven worker-pool runtime across platforms and strategies, the
// bandwidth-modeled link sweep, the chaos sweep (one injected fault
// scenario per class, survived with a clean exactly-once ledger), and
// the multi-tenant fleet-service sweep (Poisson arrivals per policy and
// load, with a chaos-isolation entry), the network-topology sweep, the
// capacity-model validation sweep, and the closed-loop iterative sweep
// (three planning policies on a drifting fleet plus one adaptive run per
// fault class) — every measured volume cross-checked against the paper's
// closed forms and every trace audited by the invariant oracle —
// emitting the eight BENCH_*.json artifacts (see docs/PERFORMANCE.md).
// Ctrl-C stops the run at the next sweep boundary without writing
// partial artifacts.
func runBench(args []string) error {
	fs := newFlagSet("bench")
	seed := fs.Int64("seed", 42, "random seed (identical seeds reproduce identical geometry and volumes)")
	out := fs.String("out", ".", "directory for the BENCH_*.json artifacts")
	quick := fs.Bool("quick", false, "reduced CI configuration: smaller sizes, fewer platforms")
	rate := fs.Float64("rate", 0, "token-bucket rate scale in cells/second for a speed-1 worker (0 = default 2e6)")
	chaosOnly := fs.Bool("chaos", false, "run (or with -validate, check) only the chaos sweep")
	serviceOnly := fs.Bool("service", false, "run (or with -validate, check) only the fleet-service sweep")
	topologyOnly := fs.Bool("topology", false, "run (or with -validate, check) only the network-topology sweep")
	capacityOnly := fs.Bool("capacity", false, "run (or with -validate, check) only the capacity-model validation sweep")
	iterativeOnly := fs.Bool("iterative", false, "run (or with -validate, check) only the closed-loop iterative sweep")
	validate := fs.Bool("validate", false, "validate existing BENCH_*.json in -out instead of running")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the sweeps to this file (inspect with `go tool pprof`)")
	compare := fs.String("compare", "", "compare a baseline BENCH_kernels.json against a new one (positional arg; defaults to -out's) and print a benchstat-style table instead of running")
	if err := fs.Parse(args); err != nil {
		return err
	}
	only := 0
	for _, f := range []bool{*chaosOnly, *serviceOnly, *topologyOnly, *capacityOnly, *iterativeOnly} {
		if f {
			only++
		}
	}
	if only > 1 {
		return fmt.Errorf("bench: -chaos, -service, -topology, -capacity and -iterative are mutually exclusive")
	}
	paths := bench.Paths(*out)
	if *compare != "" {
		// `nlfl bench -compare old.json [new.json]`: before/after kernel
		// table, the manual counterpart of the CI comparison step.
		before, err := results.LoadBenchKernels(*compare)
		if err != nil {
			return err
		}
		newPath := paths.Kernels
		if fs.NArg() > 0 {
			newPath = fs.Arg(0)
		}
		after, err := results.LoadBenchKernels(newPath)
		if err != nil {
			return err
		}
		fmt.Printf("kernel comparison: %s → %s\n", *compare, newPath)
		fmt.Print(bench.FormatKernelDeltas(bench.CompareKernels(before, after)))
		return nil
	}
	if *validate {
		if *chaosOnly {
			cf, err := results.LoadBenchChaos(paths.Chaos)
			if err != nil {
				return err
			}
			if err := bench.ValidateChaos(cf); err != nil {
				return err
			}
			fmt.Println("BENCH_chaos.json: schema ok, ledger exact, recovery counters nonzero, zero violations")
			return nil
		}
		if *serviceOnly {
			sf, err := results.LoadBenchService(paths.Service)
			if err != nil {
				return err
			}
			if err := bench.ValidateService(sf); err != nil {
				return err
			}
			fmt.Println("BENCH_service.json: schema ok, policy gate holds, chaos isolation exact, zero violations")
			return nil
		}
		if *topologyOnly {
			tf, err := results.LoadBenchTopology(paths.Topology)
			if err != nil {
				return err
			}
			if err := bench.ValidateTopology(tf); err != nil {
				return err
			}
			fmt.Println("BENCH_topology.json: schema ok, crossover shift holds (star yes, chain no), edge ledgers exact, zero violations")
			return nil
		}
		if *capacityOnly {
			capf, err := results.LoadBenchCapacity(paths.Capacity)
			if err != nil {
				return err
			}
			if err := bench.ValidateCapacity(capf); err != nil {
				return err
			}
			fmt.Println("BENCH_capacity.json: schema ok, predictions within tolerance on both runtimes, knee interior")
			return nil
		}
		if *iterativeOnly {
			itf, err := results.LoadBenchIterative(paths.Iterative)
			if err != nil {
				return err
			}
			if err := bench.ValidateIterative(itf); err != nil {
				return err
			}
			fmt.Println("BENCH_iterative.json: schema ok, residuals deterministic across policies, adaptive beats static and tracks the oracle, zero violations")
			return nil
		}
		if err := bench.ValidateFiles(*out); err != nil {
			return err
		}
		fmt.Println("BENCH_kernels.json, BENCH_runtime.json, BENCH_link.json, BENCH_chaos.json, BENCH_service.json, BENCH_topology.json, BENCH_capacity.json, BENCH_iterative.json: schema ok, volumes within tolerance, zero violations")
		return nil
	}

	ctx, stop := benchContext()
	defer stop()
	if *cpuprofile != "" {
		pf, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer pf.Close()
		if err := pprof.StartCPUProfile(pf); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	cfg := bench.Config{Seed: *seed, Quick: *quick, WorkPerSecond: *rate}
	if *chaosOnly {
		cf, err := bench.RunChaosSweep(ctx, cfg)
		if err != nil {
			return err
		}
		if err := bench.ValidateChaos(cf); err != nil {
			return err
		}
		if err := results.SaveBenchChaos(paths.Chaos, cf); err != nil {
			return err
		}
		printChaos(cf)
		fmt.Printf("\nwrote %s (every scenario survived, ledger exact, zero trace violations)\n", paths.Chaos)
		return nil
	}
	if *serviceOnly {
		sf, err := bench.RunServiceSweep(ctx, cfg)
		if err != nil {
			return err
		}
		if err := bench.ValidateService(sf); err != nil {
			return err
		}
		if err := results.SaveBenchService(paths.Service, sf); err != nil {
			return err
		}
		printService(sf)
		fmt.Printf("\nwrote %s (policy gate holds, chaos isolation exact, zero trace violations)\n", paths.Service)
		return nil
	}
	if *topologyOnly {
		tf, err := bench.RunTopologySweep(ctx, cfg)
		if err != nil {
			return err
		}
		if err := bench.ValidateTopology(tf); err != nil {
			return err
		}
		if err := results.SaveBenchTopology(paths.Topology, tf); err != nil {
			return err
		}
		printTopology(tf)
		fmt.Printf("\nwrote %s (crossover shift holds, edge ledgers exact, zero trace violations)\n", paths.Topology)
		return nil
	}
	if *capacityOnly {
		capf, err := bench.RunCapacitySweep(ctx, cfg)
		if err != nil {
			return err
		}
		if err := bench.ValidateCapacity(capf); err != nil {
			return err
		}
		if err := results.SaveBenchCapacity(paths.Capacity, capf); err != nil {
			return err
		}
		printCapacity(capf)
		fmt.Printf("\nwrote %s (predictions within tolerance on both runtimes, knee interior)\n", paths.Capacity)
		return nil
	}
	if *iterativeOnly {
		itf, err := bench.RunIterativeSweep(ctx, cfg)
		if err != nil {
			return err
		}
		if err := bench.ValidateIterative(itf); err != nil {
			return err
		}
		if err := results.SaveBenchIterative(paths.Iterative, itf); err != nil {
			return err
		}
		printIterative(itf)
		fmt.Printf("\nwrote %s (adaptive beats static, tracks the oracle, residuals deterministic, zero violations)\n", paths.Iterative)
		return nil
	}

	if _, err := bench.Run(ctx, cfg, *out); err != nil {
		return err
	}

	kf, err := results.LoadBenchKernels(paths.Kernels)
	if err != nil {
		return err
	}
	fmt.Printf("kernels (autotuned tile %d, GOMAXPROCS %d):\n", kf.AutotunedTile, kf.GOMAXPROCS)
	fmt.Printf("  %-16s %6s %5s %4s %12s %10s\n", "kernel", "n", "tile", "wkrs", "seconds", "GFLOPS")
	for _, e := range kf.Entries {
		fmt.Printf("  %-16s %6d %5d %4d %12.6f %10.3f\n", e.Kernel, e.N, e.Tile, e.Workers, e.Seconds, e.GFLOPS)
	}

	rf, err := results.LoadBenchRuntime(paths.Runtime)
	if err != nil {
		return err
	}
	fmt.Printf("\nruntime (rate %.3g cells/s per unit speed):\n", rf.WorkPerSecond)
	fmt.Printf("  %-12s %-6s %6s %5s %7s %12s %12s %8s %10s\n",
		"platform", "strat", "n", "grid", "chunks", "measured", "predicted", "relerr", "cells/s")
	for _, e := range rf.Entries {
		fmt.Printf("  %-12s %-6s %6d %5d %7d %12.1f %12.1f %8.5f %10.4g\n",
			e.Platform, e.Strategy, e.N, e.Grid, e.Chunks, e.MeasuredVolume, e.PredictedVolume, e.RelError, e.CellsPerSec)
	}
	lf, err := results.LoadBenchLink(paths.Link)
	if err != nil {
		return err
	}
	fmt.Printf("\nlink sweep (one-port master link, double-buffered prefetch):\n")
	fmt.Printf("  %-12s %-6s %10s %10s %10s %10s %8s\n",
		"platform", "strat", "bw", "volume", "makespan", "commTime", "overlap")
	for _, e := range lf.Entries {
		fmt.Printf("  %-12s %-6s %10.3g %10.1f %10.4f %10.4f %8.3f\n",
			e.Platform, e.Strategy, e.Bandwidth, e.MeasuredVolume, e.Makespan, e.CommTime, e.OverlapFraction)
	}
	cf, err := results.LoadBenchChaos(paths.Chaos)
	if err != nil {
		return err
	}
	fmt.Println()
	printChaos(cf)
	sf, err := results.LoadBenchService(paths.Service)
	if err != nil {
		return err
	}
	fmt.Println()
	printService(sf)
	tf, err := results.LoadBenchTopology(paths.Topology)
	if err != nil {
		return err
	}
	fmt.Println()
	printTopology(tf)
	capf, err := results.LoadBenchCapacity(paths.Capacity)
	if err != nil {
		return err
	}
	fmt.Println()
	printCapacity(capf)
	itf, err := results.LoadBenchIterative(paths.Iterative)
	if err != nil {
		return err
	}
	fmt.Println()
	printIterative(itf)
	fmt.Printf("\nwrote %s, %s, %s, %s, %s, %s, %s and %s (all volumes within tolerance, zero trace violations)\n",
		paths.Kernels, paths.Runtime, paths.Link, paths.Chaos, paths.Service, paths.Topology, paths.Capacity, paths.Iterative)
	return nil
}

// printChaos renders the chaos sweep: per scenario, the degraded plan's
// volume ledger and the recovery counters proving the fault bit.
func printChaos(cf results.ChaosBenchFile) {
	fmt.Printf("chaos sweep (rate %.3g cells/s per unit speed, exactly-once ledger):\n", cf.WorkPerSecond)
	fmt.Printf("  %-12s %-12s %-6s %10s %10s %10s %8s %5s %5s %5s %9s\n",
		"platform", "class", "strat", "plan", "replanned", "committed", "wasted", "retry", "spec", "dead", "reclaimed")
	for _, e := range cf.Entries {
		fmt.Printf("  %-12s %-12s %-6s %10.1f %10.1f %10.1f %8.1f %5d %5d %5d %9.0f\n",
			e.Platform, e.Class, e.Strategy, e.PlanVolume, e.ReplannedVolume, e.CommittedVolume,
			e.WastedData, e.RetriedChunks, e.SpeculativeWins, e.DegradedWorkers, e.ReclaimedCells)
	}
}

// printTopology renders the topology sweep: per (topology, bandwidth,
// strategy), the delivered and relayed volumes and the makespan, then
// the measured het-vs-hom crossover per topology.
func printTopology(tf results.TopologyBenchFile) {
	fmt.Printf("topology sweep (rate %.3g cells/s per unit speed, het-vs-hom crossover at %.2gx):\n",
		tf.WorkPerSecond, tf.CrossoverThreshold)
	fmt.Printf("  %-10s %-6s %10s %10s %10s %10s %8s\n",
		"topology", "strat", "bw", "volume", "relayed", "makespan", "overlap")
	for _, e := range tf.Entries {
		fmt.Printf("  %-10s %-6s %10.3g %10.1f %10.1f %10.4f %8.3f\n",
			e.Topology, e.Strategy, e.Bandwidth, e.MeasuredVolume, e.RelayVolume, e.Makespan, e.OverlapFraction)
	}
	for _, topo := range []string{"star", "chain", "two-source"} {
		if bw, ok := tf.Crossovers[topo]; ok {
			if bw > 0 {
				fmt.Printf("  crossover %-10s bw=%.3g (het wins at and below this bandwidth)\n", topo, bw)
			} else {
				fmt.Printf("  crossover %-10s none (het never wins by the threshold)\n", topo)
			}
		}
	}
}

// printCapacity renders the capacity sweep: per slice size, the model's
// forecast next to both observed makespans, then the knee line an
// operator would read off `nlfl recommend`.
func printCapacity(capf results.CapacityBenchFile) {
	fmt.Printf("capacity sweep (alpha %.3g, n=%d, rate %.3g cells/s per unit speed, bw %.3g):\n",
		capf.Alpha, capf.N, capf.WorkPerSecond, capf.Bandwidth)
	fmt.Printf("  %-4s %10s %12s %12s %12s %8s %8s %10s\n",
		"p", "volume", "predicted", "simulated", "measured", "speedup", "gain", "chunk-loss")
	for _, e := range capf.Entries {
		fmt.Printf("  %-4d %10.1f %12.6f %12.6f %12.6f %8.3f %8.4f %10.3f\n",
			e.Workers, e.PredictedVolume, e.PredictedMakespan, e.SimMakespan, e.MeasuredMakespan,
			e.Speedup, e.MarginalGain, e.UnprocessedIfChunked)
	}
	fmt.Printf("  knee %d of %d workers at theta %.2f (best %d, closed-form speedup bound %.3f)\n",
		capf.Knee, len(capf.Speeds), capf.Theta, capf.Best, capf.SpeedupBound)
}

// printIterative renders the closed-loop iterative sweep: the three
// planning policies' ranking on the drifting fleet, then the adaptive
// controller's survival record per fault class.
func printIterative(itf results.IterativeBenchFile) {
	fmt.Printf("iterative sweep (rate %.3g cells/s per unit speed, drifting straggler, deterministic residuals):\n",
		itf.WorkPerSecond)
	fmt.Printf("  %-8s %6s %5s %8s %10s %8s %9s %9s %5s\n",
		"policy", "rounds", "conv", "dominant", "makespan", "replans", "fallbacks", "reanchors", "viol")
	for _, e := range itf.Policies {
		fmt.Printf("  %-8s %6d %5v %8d %10.4f %8d %9d %9d %5d\n",
			e.Policy, e.Rounds, e.Converged, e.Dominant, e.TotalMakespan,
			e.Replans, e.Fallbacks, e.Reanchors, e.Violations)
	}
	fmt.Printf("  adaptive/oracle %.3fx, static/adaptive %.3fx\n",
		itf.AdaptiveOverOracle, itf.StaticOverAdaptive)
	fmt.Printf("  %-10s %6s %5s %5s %8s %9s %10s %5s\n",
		"chaos", "rounds", "conv", "dead", "replans", "reanchors", "commTime", "viol")
	for _, e := range itf.Chaos {
		fmt.Printf("  %-10s %6d %5v %5d %8d %9d %10.5f %5d\n",
			e.Class, e.Rounds, e.Converged, len(e.DeadWorkers),
			e.Replans, e.Reanchors, e.CommTime, e.Violations)
	}
}

// printService renders the fleet-service sweep: per (policy, load), the
// admission counters and latency quantiles of the Poisson run.
func printService(sf results.ServiceBenchFile) {
	fmt.Printf("service sweep (rate %.3g cells/s per unit speed, Poisson arrivals, %d workers):\n",
		sf.WorkPerSecond, len(sf.Speeds))
	fmt.Printf("  %-6s %5s %6s %5s %5s %5s %5s %9s %9s %9s %9s\n",
		"policy", "load", "chaos", "jobs", "rej", "done", "fail", "jobs/s", "p50", "p99", "max")
	for _, e := range sf.Entries {
		fmt.Printf("  %-6s %5.2f %6v %5d %5d %5d %5d %9.2f %9.4f %9.4f %9.4f\n",
			e.Policy, e.LoadFactor, e.Chaos, e.Jobs, e.Rejected, e.Completed, e.Failed,
			e.ThroughputJobsPerSec, e.LatencyP50, e.LatencyP99, e.LatencyMax)
	}
}
