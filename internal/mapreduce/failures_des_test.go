package mapreduce

import (
	"math"
	"testing"
	"testing/quick"

	"nlfl/internal/platform"
	"nlfl/internal/stats"
)

// The durability rule made explicit: a worker's completed map outputs are
// lost if it dies at ANY point before the job's last task completes —
// even while sitting idle long after its own last completion. Both the
// epoch model and its DES port must enforce it.
func TestIdleWorkerDeathLosesCompletedOutputs(t *testing.T) {
	pl, err := platform.FromSpeeds([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// 3 unit tasks on 2 unit workers: w0 runs t0 then t2 (finishes at 2),
	// w1 runs t1 and goes idle at t=1. Killing w1 at t=1.5 — while idle,
	// before the job ends at t=2 — must lose its completed output.
	tasks, _ := UniformTasks(3, 0, 1)
	fails := []Failure{{Worker: 1, Time: 1.5}}
	for name, run := range map[string]func() (FaultResult, error){
		"epoch": func() (FaultResult, error) { return ScheduleWithFailures(pl, tasks, fails) },
		"des":   func() (FaultResult, error) { return ScheduleWithFailuresDES(pl, tasks, fails) },
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Reexecutions != 1 || res.LostWork != 1 {
			t.Errorf("%s: idle death should lose the completed task: %+v", name, res)
		}
		if res.TasksPerWorker[1] != 0 {
			t.Errorf("%s: dead worker kept credit: %+v", name, res)
		}
		if res.TasksPerWorker[0] != 3 {
			t.Errorf("%s: survivor should end up with every task: %+v", name, res)
		}
		// w0's in-flight t2 bounces at the boundary; it then runs the
		// re-queued t1 and t2 back to back from 1.5.
		if math.Abs(res.Makespan-3.5) > 1e-9 {
			t.Errorf("%s: makespan = %v, want 3.5", name, res.Makespan)
		}
	}
	// The counterpart: dying after the job completed is free.
	for name, run := range map[string]func() (FaultResult, error){
		"epoch": func() (FaultResult, error) {
			return ScheduleWithFailures(pl, tasks, []Failure{{Worker: 1, Time: 2.5}})
		},
		"des": func() (FaultResult, error) {
			return ScheduleWithFailuresDES(pl, tasks, []Failure{{Worker: 1, Time: 2.5}})
		},
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Reexecutions != 0 || res.TasksPerWorker[1] != 1 || res.Makespan != 2 {
			t.Errorf("%s: post-completion death should be free: %+v", name, res)
		}
	}
}

func TestDESMatchesEpochOnKnownScenarios(t *testing.T) {
	pl, err := platform.FromSpeeds([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	tasks, _ := UniformTasks(10, 0, 1)
	res, err := ScheduleWithFailuresDES(pl, tasks, []Failure{{Worker: 1, Time: 3.5}})
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksPerWorker[1] != 0 || res.TasksPerWorker[0] != 10 ||
		res.Reexecutions != 3 || res.LostWork != 3 || res.Makespan < 10 {
		t.Errorf("DES diverged on the reference scenario: %+v", res)
	}

	if _, err := ScheduleWithFailuresDES(pl, tasks, []Failure{{Worker: 0, Time: 1}, {Worker: 1, Time: 1}}); err == nil {
		t.Error("killing every worker mid-job should fail")
	}
	if _, err := ScheduleWithFailuresDES(pl, []TaskSpec{{Work: -1}}, nil); err == nil {
		t.Error("negative work accepted")
	}
	if _, err := ScheduleWithFailuresDES(pl, tasks, []Failure{{Worker: 9, Time: 1}}); err == nil {
		t.Error("unknown worker accepted")
	}
	if _, err := ScheduleWithFailuresDES(pl, tasks, []Failure{{Worker: 0, Time: -2}}); err == nil {
		t.Error("negative failure time accepted")
	}
}

func TestDESDuplicateFailureIsNoop(t *testing.T) {
	pl, err := platform.FromSpeeds([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	tasks, _ := UniformTasks(9, 0, 1)
	a, err := ScheduleWithFailuresDES(pl, tasks, []Failure{{Worker: 2, Time: 1.5}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ScheduleWithFailuresDES(pl, tasks, []Failure{{Worker: 2, Time: 1.5}, {Worker: 2, Time: 2.5}})
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.Reexecutions != b.Reexecutions || a.LostWork != b.LostWork {
		t.Errorf("duplicate failure of a dead worker changed the DES outcome: %+v vs %+v", a, b)
	}
}

// Property cross-check: for failures on distinct workers, the DES port and
// the epoch model produce the same makespan, credit, and loss accounting
// (the domain where the two models are defined to coincide; duplicate
// failures on dead workers are the epoch model's documented acausal
// corner and are excluded).
func TestDESCrossChecksEpochModel(t *testing.T) {
	f := func(seed int64, nt uint8, when uint8) bool {
		r := stats.NewRNG(seed)
		p := 2 + r.Intn(5)
		pl, err := platform.Generate(p, stats.Uniform{Lo: 0.5, Hi: 4}, r)
		if err != nil {
			return false
		}
		tasks := make([]TaskSpec, int(nt%40)+1)
		for i := range tasks {
			tasks[i] = TaskSpec{Work: 1}
		}
		clean, err := ScheduleWithFailures(pl, tasks, nil)
		if err != nil {
			return false
		}
		nKill := r.Intn(p)
		var fails []Failure
		for k := 0; k < nKill; k++ {
			ft := clean.Makespan * (0.05 + 0.9*float64(when)/255) * (1 + 0.1*float64(k))
			fails = append(fails, Failure{Worker: k, Time: ft})
		}
		epoch, errE := ScheduleWithFailures(pl, tasks, fails)
		des, errD := ScheduleWithFailuresDES(pl, tasks, fails)
		if (errE == nil) != (errD == nil) {
			return false
		}
		if errE != nil {
			return true
		}
		if math.Abs(epoch.Makespan-des.Makespan) > 1e-9 {
			return false
		}
		if epoch.Reexecutions != des.Reexecutions {
			return false
		}
		if math.Abs(epoch.LostWork-des.LostWork) > 1e-9 {
			return false
		}
		for w := range epoch.TasksPerWorker {
			if epoch.TasksPerWorker[w] != des.TasksPerWorker[w] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
