// Concurrency tests aimed at the race detector (CI runs the whole suite
// under `go test -race`): the sharded queue's stealing path and the
// prefetch goroutines feeding trace.Live.
package runtime

import (
	stdruntime "runtime"
	"sync"
	"testing"

	"nlfl/internal/faults"
	"nlfl/internal/matmul"
	"nlfl/internal/stats"
	"nlfl/internal/trace"
)

// TestWorkQueueConcurrentPop drains one sharded queue from many
// goroutines at once and checks every chunk is delivered exactly once —
// the stealing path is only safe if shard locking is right.
func TestWorkQueueConcurrentPop(t *testing.T) {
	const (
		workers = 8
		grid    = 16 // 256 ownerless chunks
	)
	chunks, err := GridChunks(64, grid)
	if err != nil {
		t.Fatal(err)
	}
	q := newWorkQueue(chunks, workers, 4)

	var mu sync.Mutex
	seen := make(map[int]int, len(chunks))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				c, ok := q.pop(w)
				if !ok {
					return
				}
				mu.Lock()
				seen[c.Task]++
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	if len(seen) != len(chunks) {
		t.Fatalf("drained %d distinct chunks, want %d", len(seen), len(chunks))
	}
	for task, count := range seen {
		if count != 1 {
			t.Errorf("chunk %d delivered %d times", task, count)
		}
	}
}

// TestRunPrefetchConcurrency runs the full pool with prefetch and the
// bandwidth model on — transfer goroutines racing the compute loop into
// trace.Live — and audits the result. Meaningful under -race.
func TestRunPrefetchConcurrency(t *testing.T) {
	const n = 64
	r := stats.NewRNG(31)
	a := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, n)
	b := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, n)
	chunks, err := GridChunks(n, 8)
	if err != nil {
		t.Fatal(err)
	}
	plan := &StrategyPlan{Strategy: "hom", N: n, Chunks: chunks, Grid: 8, K: 1,
		Predicted: float64(2 * n * 8)}
	rep, err := Run(plan, a, b, Options{
		Speeds:        []float64{1, 2, 3, 4},
		WorkPerSecond: 2e6,
		Link:          Link{ElemsPerSecond: 2e5},
		Prefetch:      true,
		VerifyEvery:   11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if vs := trace.Check(rep.Trace, rep.Expect(1e-6)); len(vs) != 0 {
		t.Errorf("trace violations: %v", vs)
	}
}

// TestChaosQueueStealDuringReclaim churns three survivors through the
// resilient queue's next/commit cycle while the main goroutine
// concurrently reclaims a dead worker — whose un-issued backlog lands on
// its home stripe mid-drain, so pop's "empty" verdicts race the push.
// Every cell must still commit exactly once. Meaningful under -race.
func TestChaosQueueStealDuringReclaim(t *testing.T) {
	const (
		workers = 4
		dead    = 3
		n       = 64
	)
	// Half the domain ownerless, half owned by the worker about to die.
	chunks, err := GridChunks(n, 8)
	if err != nil {
		t.Fatal(err)
	}
	totalCells := 0
	for i := range chunks {
		if i%2 == 0 {
			chunks[i].Owner = dead
		}
		totalCells += chunks[i].Cells()
	}
	cq := newChaosQueue(chunks, workers, 4, 0)

	// The dead worker drags a couple of chunks into leased state first so
	// reclaim exercises the lease-revocation path, not just the backlog.
	for i := 0; i < 2; i++ {
		if _, st := cq.next(dead, 0); st != queueGot {
			t.Fatalf("dead worker lease %d: state %v, want queueGot", i, st)
		}
	}

	var mu sync.Mutex
	committed := make(map[int]int)
	cells := 0
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers-1; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for {
				c, st := cq.next(w, 0)
				switch st {
				case queueDone:
					return
				case queueWait:
					continue // reclaim may still repopulate the shards
				}
				if won, _ := cq.commit(c.Task, w); won {
					mu.Lock()
					committed[c.Task]++
					cells += c.Cells()
					mu.Unlock()
				}
			}
		}(w)
	}
	close(start)
	// Identity replan keeping the task id: reclaimed chunks go ownerless
	// onto the dead worker's home stripe, where only stealing finds them.
	reclaimed, _, over := cq.reclaim(dead, 2, func(c Chunk) []Chunk {
		c.Owner = -1
		return []Chunk{c}
	})
	wg.Wait()

	if over != nil {
		t.Fatalf("reclaim reported exhausted budget for task %d", over.Task)
	}
	if reclaimed == 0 {
		t.Fatal("reclaim recovered zero cells; dead worker's backlog was lost")
	}
	if cells != totalCells {
		t.Errorf("committed %d cells, want %d", cells, totalCells)
	}
	for task, count := range committed {
		if count != 1 {
			t.Errorf("task %d committed %d times", task, count)
		}
	}
}

// TestHighParallelismAffinityStealStress runs the padded affinity queue
// at a GOMAXPROCS well above the machine's core count: twelve workers on
// sixteen scheduler threads, one home stripe each (the default), prefetch
// fetchers racing the compute loops into trace.Live. Fast workers drain
// their own stripes then cross into each other's via the ring steal —
// exactly the path the shard padding and contiguous layout rewrote.
// Meaningful under -race.
func TestHighParallelismAffinityStealStress(t *testing.T) {
	defer stdruntime.GOMAXPROCS(stdruntime.GOMAXPROCS(16))
	const (
		n       = 128
		workers = 12
	)
	r := stats.NewRNG(53)
	a := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, n)
	b := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, n)
	chunks, err := GridChunks(n, 16) // 256 chunks over 12 home stripes
	if err != nil {
		t.Fatal(err)
	}
	plan := &StrategyPlan{Strategy: "hom", N: n, Chunks: chunks, Grid: 16, K: 1,
		Predicted: float64(2 * n * 16)}
	speeds := make([]float64, workers)
	for i := range speeds {
		speeds[i] = 1 + float64(i%3) // unequal speeds force cross-stripe steals
	}
	rep, err := Run(plan, a, b, Options{
		Speeds:        speeds,
		WorkPerSecond: 5e7,
		Prefetch:      true,
		VerifyEvery:   7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if vs := trace.Check(rep.Trace, rep.Expect(1e-9)); len(vs) != 0 {
		t.Errorf("trace violations: %v", vs)
	}
}

// TestHighParallelismCrashReclaimStress is the chaos flavor of the same
// stress: two of twelve workers crash mid-run, so reclamation pushes land
// on dead workers' home stripes while the ten survivors' ring steals scan
// them concurrently — the steal-during-reclaim interleaving on the padded
// contiguous shard array, under a 16-thread scheduler. Meaningful under
// -race.
func TestHighParallelismCrashReclaimStress(t *testing.T) {
	defer stdruntime.GOMAXPROCS(stdruntime.GOMAXPROCS(16))
	const (
		n       = 128
		workers = 12
	)
	r := stats.NewRNG(59)
	a := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, n)
	b := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, n)
	chunks, err := GridChunks(n, 16)
	if err != nil {
		t.Fatal(err)
	}
	plan := &StrategyPlan{Strategy: "hom", N: n, Chunks: chunks, Grid: 16, K: 1,
		Predicted: float64(2 * n * 16)}
	speeds := make([]float64, workers)
	for i := range speeds {
		speeds[i] = 1
	}
	rep, err := Run(plan, a, b, Options{
		Speeds:        speeds,
		WorkPerSecond: 2e6,
		Burst:         1,
		VerifyEvery:   11,
		Chaos: Chaos{
			Scenario: faults.Scenario{Events: []faults.Event{
				{Kind: faults.Crash, Worker: 2, Time: 0.004},
				{Kind: faults.Crash, Worker: 9, Time: 0.006},
			}},
			MaxRetries: 4,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := matmul.VectorOuter(a, b); !want.Equal(rep.Out, 0) {
		t.Errorf("product differs from the reference kernel")
	}
	if vs := trace.Check(rep.Trace, rep.Expect(1e-9)); len(vs) != 0 {
		t.Errorf("trace violations: %v", vs)
	}
	if rep.DegradedWorkers != 2 {
		t.Errorf("DegradedWorkers = %d, want 2", rep.DegradedWorkers)
	}
	if rep.DataVolume != rep.CommittedVolume+rep.WastedData {
		t.Errorf("shipping ledger leaks: %v ≠ %v + %v", rep.DataVolume, rep.CommittedVolume, rep.WastedData)
	}
}
