package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"nlfl/internal/platform"
	"nlfl/internal/stats"
)

func TestAnalyzeLinear(t *testing.T) {
	v, err := Analyze(Workload{Kind: Linear, N: 1e6}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if v.Class != Divisible || v.UndoneFraction != 0 {
		t.Errorf("linear verdict: %+v", v)
	}
	if !strings.Contains(v.String(), "divisible") {
		t.Error("verdict rendering")
	}
}

func TestAnalyzeSorting(t *testing.T) {
	v, err := Analyze(Workload{Kind: LogLinear, N: 1 << 20}, 32)
	if err != nil {
		t.Fatal(err)
	}
	if v.Class != AlmostDivisible {
		t.Errorf("verdict: %+v", v)
	}
	// log 32 / log 2^20 = 5/20.
	if math.Abs(v.UndoneFraction-0.25) > 1e-12 {
		t.Errorf("fraction = %v, want 0.25", v.UndoneFraction)
	}
}

func TestAnalyzePower(t *testing.T) {
	v, err := Analyze(Workload{Kind: Power, N: 1e4, Alpha: 2}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if v.Class != NotDivisible {
		t.Errorf("verdict: %+v", v)
	}
	if math.Abs(v.UndoneFraction-0.99) > 1e-12 {
		t.Errorf("fraction = %v, want 0.99", v.UndoneFraction)
	}
	// α = 1 degrades to linear.
	v1, err := Analyze(Workload{Kind: Power, N: 100, Alpha: 1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if v1.Class != Divisible {
		t.Errorf("α=1 verdict: %+v", v1)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(Workload{Kind: Linear, N: 10}, 0); err == nil {
		t.Error("p=0 should fail")
	}
	if _, err := Analyze(Workload{Kind: Linear, N: -1}, 2); err == nil {
		t.Error("negative N should fail")
	}
	if _, err := Analyze(Workload{Kind: Power, N: 10, Alpha: 0.5}, 2); err == nil {
		t.Error("α<1 should fail")
	}
	if _, err := Analyze(Workload{Kind: WorkloadKind(99), N: 10}, 2); err == nil {
		t.Error("unknown kind should fail")
	}
}

func TestDivisibilityStrings(t *testing.T) {
	if Divisible.String() != "divisible" || NotDivisible.String() != "not-divisible" {
		t.Error("names changed")
	}
	if Divisibility(9).String() == "" || kindName(WorkloadKind(9)) == "" {
		t.Error("unknown values must render")
	}
}

func TestPlanOuterProduct(t *testing.T) {
	pl, err := platform.FromSpeeds([]float64{1, 1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	plan, err := PlanOuterProduct(pl, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Workers) != 4 {
		t.Fatalf("workers = %d", len(plan.Workers))
	}
	shares := 0.0
	for i, w := range plan.Workers {
		if w.Worker != i {
			t.Errorf("worker %d misindexed as %d", i, w.Worker)
		}
		if math.Abs(w.Rect.Area()-w.Share) > 1e-9 {
			t.Errorf("worker %d rect area %v != share %v", i, w.Rect.Area(), w.Share)
		}
		shares += w.Share
	}
	if math.Abs(shares-1) > 1e-9 {
		t.Errorf("shares sum to %v", shares)
	}
	if plan.Ratio() < 1 || plan.Ratio() > 1.75 {
		t.Errorf("ratio = %v outside guarantee", plan.Ratio())
	}
	if plan.Savings() < 1 {
		t.Errorf("savings = %v, heterogeneous plan should not lose to hom", plan.Savings())
	}
	if !strings.Contains(plan.String(), "plan for") {
		t.Error("plan rendering")
	}
	if _, err := PlanOuterProduct(pl, -3); err == nil {
		t.Error("negative N should fail")
	}
}

func TestPlanMatMul(t *testing.T) {
	pl, err := platform.FromSpeeds([]float64{1, 3, 6})
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	plan, err := PlanMatMul(pl, n)
	if err != nil {
		t.Fatal(err)
	}
	// Total volume must be n²(Ĉ-2): per-worker volumes sum to it.
	sum := 0.0
	for _, w := range plan.Workers {
		if w.DataVolume < 0 {
			t.Errorf("worker %d negative volume %v", w.Worker, w.DataVolume)
		}
		sum += w.DataVolume
	}
	if math.Abs(sum-plan.TotalVolume) > 1e-6 {
		t.Errorf("volumes sum %v != total %v", sum, plan.TotalVolume)
	}
	if plan.TotalVolume < plan.LowerBound-1e-6 {
		t.Errorf("total %v below LB %v", plan.TotalVolume, plan.LowerBound)
	}
}

// Property: plans are feasible (shares = normalized speeds, volumes
// positive, ratio within the 7/4 guarantee) on random platforms.
func TestPlanProperty(t *testing.T) {
	f := func(seed int64, np uint8) bool {
		p := int(np%20) + 1
		r := stats.NewRNG(seed)
		pl, err := platform.Generate(p, stats.LogNormal{Mu: 0, Sigma: 1}, r)
		if err != nil {
			return false
		}
		plan, err := PlanOuterProduct(pl, 50)
		if err != nil {
			return false
		}
		xs := pl.NormalizedSpeeds()
		for i, w := range plan.Workers {
			if math.Abs(w.Share-xs[i]) > 1e-9 || w.DataVolume <= 0 {
				return false
			}
		}
		return plan.Ratio() >= 1-1e-9 && plan.Ratio() <= 1.75+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
