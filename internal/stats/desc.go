package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Variance returns the unbiased (n-1) sample variance of xs; it returns 0
// for fewer than two samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It does not modify xs.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary is a five-number-plus summary of a sample.
type Summary struct {
	N             int
	Mean, StdDev  float64
	Min, Max      float64
	Median        float64
	P25, P75, P95 float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		Median: Quantile(xs, 0.5),
		P25:    Quantile(xs, 0.25),
		P75:    Quantile(xs, 0.75),
		P95:    Quantile(xs, 0.95),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g p25=%.4g med=%.4g p75=%.4g p95=%.4g max=%.4g",
		s.N, s.Mean, s.StdDev, s.Min, s.P25, s.Median, s.P75, s.P95, s.Max)
}

// Welford accumulates a running mean and variance in one pass without
// storing samples (Welford's online algorithm). The zero value is ready to
// use. It is the accumulator behind every "mean ± stddev over 100 trials"
// series in the Figure 4 reproduction.
type Welford struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of samples folded in.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (NaN when empty).
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Variance returns the unbiased running variance (0 for n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the running sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest sample seen (+Inf when empty).
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return math.Inf(1)
	}
	return w.min
}

// Max returns the largest sample seen (-Inf when empty).
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return math.Inf(-1)
	}
	return w.max
}
