package samplesort

import (
	"math"
	"slices"
	"testing"
	"testing/quick"

	"nlfl/internal/platform"
	"nlfl/internal/stats"
)

func randomFloats(seed int64, n int) []float64 {
	r := stats.NewRNG(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Float64() * 1000
	}
	return xs
}

func TestSortCorrectness(t *testing.T) {
	cases := []struct {
		name string
		n    int
		p    int
	}{
		{"tiny", 10, 2},
		{"single worker", 1000, 1},
		{"more workers than keys", 5, 16},
		{"medium", 10000, 8},
		{"large", 100000, 16},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			xs := randomFloats(int64(c.n), c.n)
			orig := append([]float64(nil), xs...)
			got, tr, err := Sort(xs, Config{Workers: c.p, Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			if !slices.IsSorted(got) {
				t.Fatal("output not sorted")
			}
			if len(got) != c.n {
				t.Fatalf("length %d, want %d", len(got), c.n)
			}
			// Same multiset: compare against stdlib sort.
			want := append([]float64(nil), orig...)
			slices.Sort(want)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("element %d = %v, want %v", i, got[i], want[i])
				}
			}
			// Input untouched.
			for i := range orig {
				if xs[i] != orig[i] {
					t.Fatal("Sort mutated its input")
				}
			}
			total := 0
			for _, b := range tr.BucketSizes {
				total += b
			}
			if total != c.n {
				t.Errorf("bucket sizes sum to %d, want %d", total, c.n)
			}
		})
	}
}

func TestSortStrings(t *testing.T) {
	xs := []string{"pear", "apple", "fig", "banana", "date", "cherry"}
	got, _, err := Sort(xs, Config{Workers: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.IsSorted(got) {
		t.Errorf("strings not sorted: %v", got)
	}
}

func TestSortWithDuplicates(t *testing.T) {
	xs := make([]int, 5000)
	r := stats.NewRNG(3)
	for i := range xs {
		xs[i] = r.Intn(7) // heavy duplication stresses splitter ties
	}
	got, _, err := Sort(xs, Config{Workers: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.IsSorted(got) {
		t.Error("duplicate-heavy input not sorted")
	}
	if len(got) != len(xs) {
		t.Error("length changed")
	}
}

func TestSortEmptyAndValidation(t *testing.T) {
	got, tr, err := Sort([]float64(nil), Config{Workers: 4, Seed: 0})
	if err != nil || len(got) != 0 {
		t.Errorf("empty input: %v, %v", got, err)
	}
	if len(tr.BucketSizes) != 4 {
		t.Errorf("bucket sizes = %v", tr.BucketSizes)
	}
	if _, _, err := Sort([]float64{1}, Config{Workers: 0}); err == nil {
		t.Error("zero workers should fail")
	}
	if _, _, err := Sort([]float64{1}, Config{Workers: 2, Oversampling: -1}); err == nil {
		t.Error("negative oversampling should fail")
	}
}

func TestSortDeterminism(t *testing.T) {
	xs := randomFloats(5, 20000)
	_, tr1, err := Sort(xs, Config{Workers: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	_, tr2, err := Sort(xs, Config{Workers: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr1.BucketSizes {
		if tr1.BucketSizes[i] != tr2.BucketSizes[i] {
			t.Fatal("same seed produced different buckets")
		}
	}
}

func TestSortSequentialMatchesParallel(t *testing.T) {
	xs := randomFloats(6, 30000)
	seqOut, seqTr, err := Sort(xs, Config{Workers: 6, Seed: 11, Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	parOut, parTr, err := Sort(xs, Config{Workers: 6, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seqOut {
		if seqOut[i] != parOut[i] {
			t.Fatal("sequential and parallel outputs differ")
		}
	}
	if seqTr.MaxBucket != parTr.MaxBucket {
		t.Error("traces differ between sequential and parallel runs")
	}
}

func TestDefaultOversampling(t *testing.T) {
	if got := DefaultOversampling(1); got != 1 {
		t.Errorf("n=1: %d", got)
	}
	// N = 2^10 = 1024: log₂²N = 100.
	if got := DefaultOversampling(1024); got != 100 {
		t.Errorf("n=1024: %d, want 100", got)
	}
	if DefaultOversampling(1<<20) != 400 {
		t.Error("n=2^20 should give 400")
	}
}

func TestTraceCostAccounting(t *testing.T) {
	n, p := 1<<14, 8
	xs := randomFloats(7, n)
	_, tr, err := Sort(xs, Config{Workers: p, Seed: 13, Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if tr.ComparisonsRouting != float64(n)*3 {
		t.Errorf("routing comparisons = %v, want N·log₂8 = %v", tr.ComparisonsRouting, float64(n)*3)
	}
	// Bucket work must be within [N·log(N/p)·(1-ε), N·log N].
	seq := float64(n) * math.Log2(float64(n))
	if tr.ComparisonsBuckets >= seq {
		t.Errorf("bucket work %v should be under sequential %v", tr.ComparisonsBuckets, seq)
	}
	ideal := seq - float64(n)*math.Log2(float64(p))
	if tr.ComparisonsBuckets < ideal*0.95 {
		t.Errorf("bucket work %v far below the W-N·log p prediction %v", tr.ComparisonsBuckets, ideal)
	}
	if tr.MaxBucketRatio() < 1 {
		t.Errorf("max bucket ratio %v < 1 is impossible", tr.MaxBucketRatio())
	}
}

func TestMaxBucketConcentration(t *testing.T) {
	// With s = log²N the largest bucket stays within the Theorem B.4
	// threshold in the vast majority of trials.
	res, err := CheckConcentration(1<<14, 8, 0, 40, 99)
	if err != nil {
		t.Fatal(err)
	}
	// The theorem promises failure ≤ N^(-1/3) ≈ 0.04; allow Monte-Carlo
	// slack up to 0.15.
	if rate := res.EmpiricalFailureRate(); rate > 0.15 {
		t.Errorf("failure rate %v, theorem bound %v", rate, res.FailureBound)
	}
	if res.MeanRatio < 1 || res.MeanRatio > 1.2 {
		t.Errorf("mean max-bucket ratio %v outside [1, 1.2]", res.MeanRatio)
	}
}

func TestNonDivisibleFraction(t *testing.T) {
	// log p / log N: p=16, N=2^16 → 4/16 = 0.25.
	if got := NonDivisibleFraction(1<<16, 16); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("fraction = %v, want 0.25", got)
	}
	if NonDivisibleFraction(2, 1024) != 1 {
		t.Error("fraction must clamp at 1")
	}
	if NonDivisibleFraction(1, 4) != 0 || NonDivisibleFraction(100, 0) != 0 {
		t.Error("degenerate inputs should give 0")
	}
	// Must decrease in N for fixed p.
	prev := 1.0
	for _, n := range []int{1 << 8, 1 << 12, 1 << 16, 1 << 24} {
		f := NonDivisibleFraction(n, 32)
		if f >= prev {
			t.Errorf("fraction %v did not decrease at N=%d", f, n)
		}
		prev = f
	}
}

func TestCostModelSpeedup(t *testing.T) {
	// The Section 3.1 optimality claim is asymptotic: the master-side
	// routing (N·log p) only vanishes relative to the parallel phase
	// ((N/p)·log N) once log N ≫ p·log p. Probe the asymptotic regime
	// analytically at N = 2^1000.
	c := Cost(math.Pow(2, 1000), 16, 0)
	if c.Speedup() < 0.85*16 {
		t.Errorf("asymptotic speedup = %v, want near 16", c.Speedup())
	}
	if c.PreprocessingShare() > 0.1 {
		t.Errorf("asymptotic pre-processing share = %v, should vanish", c.PreprocessingShare())
	}
	// Speedup grows and the pre-processing share shrinks with N.
	prevSpeedup, prevShare := 0.0, 1.0
	for _, exp := range []float64{14, 22, 50, 200, 1000} {
		m := Cost(math.Pow(2, exp), 16, 0)
		if m.Speedup() <= prevSpeedup {
			t.Errorf("speedup should improve with N: %v at 2^%v", m.Speedup(), exp)
		}
		if m.PreprocessingShare() >= prevShare {
			t.Errorf("pre-processing share should shrink with N: %v at 2^%v", m.PreprocessingShare(), exp)
		}
		prevSpeedup, prevShare = m.Speedup(), m.PreprocessingShare()
	}
	if Cost(0, 4, 1).Speedup() != 0 {
		t.Error("empty cost model speedup should be 0")
	}
}

func TestSortHeterogeneousCorrectAndBalanced(t *testing.T) {
	pl, err := platform.FromSpeeds([]float64{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200000
	xs := randomFloats(21, n)
	got, ht, err := SortHeterogeneous(xs, pl, Config{Seed: 5, Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.IsSorted(got) || len(got) != n {
		t.Fatal("heterogeneous sort incorrect")
	}
	// Bucket sizes must track speeds: worker 3 (speed 8) gets ≈ 8/15 of
	// the keys.
	frac := float64(ht.BucketSizes[3]) / float64(n)
	if math.Abs(frac-8.0/15.0) > 0.05 {
		t.Errorf("fast bucket fraction = %v, want ≈ %v", frac, 8.0/15.0)
	}
	// Modelled sort-time imbalance: tᵢ ∝ log(xᵢN)/log N differs across
	// workers by ≈ log(x_max/x_min)/log(x_min·N) ≈ 0.22 at this N (it
	// decays only like 1/log N).
	if e := ht.Imbalance(); e > 0.3 {
		t.Errorf("imbalance = %v, want < 0.3", e)
	}
}

func TestSortHeterogeneousImbalanceShrinksWithN(t *testing.T) {
	pl, err := platform.FromSpeeds([]float64{1, 3, 9})
	if err != nil {
		t.Fatal(err)
	}
	var es []float64
	for _, n := range []int{1000, 30000, 1000000} {
		xs := randomFloats(int64(n), n)
		_, ht, err := SortHeterogeneous(xs, pl, Config{Seed: 17, Sequential: true})
		if err != nil {
			t.Fatal(err)
		}
		es = append(es, ht.Imbalance())
	}
	if es[2] > es[0] {
		t.Errorf("imbalance should shrink with N: %v", es)
	}
	// The decay is logarithmic: ≈ log₂(9)/log₂(N/13) ≈ 0.20 at N = 10⁶.
	if es[2] > 0.25 {
		t.Errorf("imbalance at N=10^6 is %v, want < 0.25", es[2])
	}
}

func TestSortHeterogeneousHomogeneousPlatformMatchesPlain(t *testing.T) {
	pl, err := platform.Homogeneous(4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	xs := randomFloats(31, 50000)
	hetOut, ht, err := SortHeterogeneous(xs, pl, Config{Seed: 3, Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.IsSorted(hetOut) {
		t.Fatal("not sorted")
	}
	// Equal speeds → near-equal buckets.
	if ht.MaxBucketRatio() > 1.2 {
		t.Errorf("homogeneous-platform het sort unbalanced: ratio %v", ht.MaxBucketRatio())
	}
}

func TestSortHeterogeneousEdgeCases(t *testing.T) {
	pl, _ := platform.Homogeneous(3, 1, 1)
	got, ht, err := SortHeterogeneous([]int(nil), pl, Config{Seed: 0})
	if err != nil || len(got) != 0 {
		t.Errorf("empty het sort: %v %v", got, err)
	}
	if len(ht.BucketSizes) != 3 {
		t.Error("bucket sizes missing")
	}
	if _, _, err := SortHeterogeneous([]int{1}, pl, Config{Oversampling: -2}); err == nil {
		t.Error("negative oversampling should fail")
	}
}

func TestTheoremB4Numbers(t *testing.T) {
	n := 1 << 12 // log₂N = 12
	th := TheoremB4Threshold(n, 4)
	want := float64(n) / 4 * (1 + math.Pow(1.0/12.0, 1.0/3.0))
	if math.Abs(th-want) > 1e-9 {
		t.Errorf("threshold = %v, want %v", th, want)
	}
	fb := TheoremB4FailureBound(n)
	if math.Abs(fb-math.Pow(float64(n), -1.0/3.0)) > 1e-12 {
		t.Errorf("failure bound = %v", fb)
	}
	if TheoremB4FailureBound(0) != 1 {
		t.Error("degenerate failure bound should be 1")
	}
}

// Property: sample sort equals stdlib sort on arbitrary int slices for
// arbitrary worker counts.
func TestSortMatchesStdlibProperty(t *testing.T) {
	f := func(xs []int, pRaw uint8, seed int64) bool {
		p := int(pRaw%16) + 1
		got, _, err := Sort(xs, Config{Workers: p, Seed: seed})
		if err != nil {
			return false
		}
		want := append([]int(nil), xs...)
		slices.Sort(want)
		return slices.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: heterogeneous sample sort is also a correct sort.
func TestHeterogeneousSortProperty(t *testing.T) {
	f := func(xs []float64, seed int64, np uint8) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) {
				clean = append(clean, x)
			}
		}
		p := int(np%6) + 1
		r := stats.NewRNG(seed)
		pl, err := platform.Generate(p, stats.Uniform{Lo: 1, Hi: 10}, r)
		if err != nil {
			return false
		}
		got, _, err := SortHeterogeneous(clean, pl, Config{Seed: seed})
		if err != nil {
			return false
		}
		want := append([]float64(nil), clean...)
		slices.Sort(want)
		return slices.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestSortParallelRoutingMatchesSort(t *testing.T) {
	xs := randomFloats(91, 80000)
	ref, refTr, err := Sort(xs, Config{Workers: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 3, 8} {
		got, tr, err := SortParallelRouting(xs, Config{Workers: 8, Seed: 5}, shards)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(ref, got) {
			t.Fatalf("shards=%d: output differs from Sort", shards)
		}
		for b := range tr.BucketSizes {
			if tr.BucketSizes[b] != refTr.BucketSizes[b] {
				t.Fatalf("shards=%d: bucket sizes differ", shards)
			}
		}
	}
}

func TestSortParallelRoutingValidation(t *testing.T) {
	if _, _, err := SortParallelRouting([]int{1}, Config{Workers: 0}, 2); err == nil {
		t.Error("zero workers should fail")
	}
	if _, _, err := SortParallelRouting([]int{1}, Config{Workers: 2}, 0); err == nil {
		t.Error("zero shards should fail")
	}
	if _, _, err := SortParallelRouting([]int{1}, Config{Workers: 2, Oversampling: -1}, 2); err == nil {
		t.Error("negative oversampling should fail")
	}
	out, tr, err := SortParallelRouting([]float64(nil), Config{Workers: 3}, 2)
	if err != nil || len(out) != 0 || len(tr.BucketSizes) != 3 {
		t.Error("empty input mishandled")
	}
}
