package tree

import (
	"math"
	"testing"
	"testing/quick"

	"nlfl/internal/dlt"
	"nlfl/internal/platform"
	"nlfl/internal/stats"
)

// star builds a depth-1 tree: a compute-less root feeding p leaves.
func star(speeds, bandwidths []float64) *Node {
	root := &Node{Name: "master", Speed: 1e-12} // effectively no compute
	for i := range speeds {
		root.Children = append(root.Children, &Node{
			Name: "leaf", Speed: speeds[i], Bandwidth: bandwidths[i],
		})
	}
	return root
}

func TestStarMatchesDLTClosedForm(t *testing.T) {
	speeds := []float64{1, 2, 4}
	bws := []float64{2, 1, 3}
	root := star(speeds, bws)
	const n = 300.0
	alloc, err := Allocate(root, n)
	if err != nil {
		t.Fatal(err)
	}
	ws := make([]platform.Worker, len(speeds))
	for i := range ws {
		ws[i] = platform.Worker{Speed: speeds[i], Bandwidth: bws[i]}
	}
	pl, err := platform.New(ws)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := dlt.OptimalParallel(pl, n)
	if err != nil {
		t.Fatal(err)
	}
	// The master's ~zero compute rate perturbs the makespan only by its
	// negligible share.
	if math.Abs(alloc.Makespan-ref.Makespan) > 1e-6*ref.Makespan {
		t.Errorf("tree makespan %v vs star closed form %v", alloc.Makespan, ref.Makespan)
	}
	for i, c := range root.Children {
		want := ref.LoadOf(i, n)
		if math.Abs(alloc.Loads[c]-want) > 1e-6*(1+want) {
			t.Errorf("leaf %d load %v vs DLT %v", i, alloc.Loads[c], want)
		}
	}
}

func TestAllocatePreservesTotal(t *testing.T) {
	root := &Node{Speed: 1}
	for i := 0; i < 3; i++ {
		relay := &Node{Speed: 2, Bandwidth: 1}
		for j := 0; j < 2; j++ {
			relay.Children = append(relay.Children, &Node{Speed: 3, Bandwidth: 2})
		}
		root.Children = append(root.Children, relay)
	}
	const n = 500.0
	alloc, err := Allocate(root, n)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(alloc.TotalLoad()-n) > 1e-6 {
		t.Errorf("total load %v, want %v", alloc.TotalLoad(), n)
	}
	if alloc.Makespan <= 0 {
		t.Errorf("makespan %v", alloc.Makespan)
	}
}

func TestEqualFinishTimesThroughoutTree(t *testing.T) {
	r := stats.NewRNG(3)
	root := randomTree(r, 3, 3)
	alloc, err := Allocate(root, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for node, finish := range alloc.FinishTime(root) {
		if math.Abs(finish-alloc.Makespan) > 1e-6*alloc.Makespan {
			t.Errorf("node %q finishes at %v, makespan %v", node.Name, finish, alloc.Makespan)
		}
	}
}

// randomTree builds a random tree with the given depth and fanout bound.
func randomTree(r *stats.RNG, depth, fanout int) *Node {
	n := &Node{
		Speed:     0.5 + 4*r.Float64(),
		Bandwidth: 0.5 + 4*r.Float64(),
	}
	if depth > 0 {
		kids := 1 + r.Intn(fanout)
		for i := 0; i < kids; i++ {
			n.Children = append(n.Children, randomTree(r, depth-1, fanout))
		}
	}
	return n
}

func TestDeeperTreesAbsorbMore(t *testing.T) {
	// Adding a subtree can only increase the root's capacity (decrease
	// the makespan).
	base := &Node{Speed: 1}
	base.Children = []*Node{{Speed: 1, Bandwidth: 1}}
	a1, err := Allocate(base, 100)
	if err != nil {
		t.Fatal(err)
	}
	base.Children = append(base.Children, &Node{
		Speed: 1, Bandwidth: 1,
		Children: []*Node{{Speed: 5, Bandwidth: 5}},
	})
	a2, err := Allocate(base, 100)
	if err != nil {
		t.Fatal(err)
	}
	if a2.Makespan >= a1.Makespan {
		t.Errorf("extra subtree should cut the makespan: %v → %v", a1.Makespan, a2.Makespan)
	}
}

func TestRelayLinkThrottlesSubtree(t *testing.T) {
	// A powerful subtree behind a slow ingress link is bounded by that
	// link: R = S/(1+cS) < 1/c = bandwidth.
	relay := &Node{Speed: 100, Bandwidth: 0.5, Children: []*Node{
		{Speed: 100, Bandwidth: 100},
	}}
	if r := relay.rate(); r >= relay.Bandwidth {
		t.Errorf("rate %v must stay below the ingress bandwidth %v", r, relay.Bandwidth)
	}
}

func TestWorkFractionVanishesOnTrees(t *testing.T) {
	// Section 2 on a tree: growing the tree makes the α=2 work fraction
	// collapse, just like on the star.
	prev := 1.1
	for _, fanout := range []int{1, 2, 4, 8} {
		root := &Node{Speed: 1}
		for i := 0; i < fanout; i++ {
			relay := &Node{Speed: 1, Bandwidth: 10}
			for j := 0; j < fanout; j++ {
				relay.Children = append(relay.Children, &Node{Speed: 1, Bandwidth: 10})
			}
			root.Children = append(root.Children, relay)
		}
		alloc, err := Allocate(root, 1000)
		if err != nil {
			t.Fatal(err)
		}
		frac := alloc.WorkFraction(2)
		if frac >= prev {
			t.Errorf("fanout %d: fraction %v did not shrink (prev %v)", fanout, frac, prev)
		}
		prev = frac
	}
	if prev > 0.05 {
		t.Errorf("8×8 tree still claims %v of the quadratic work", prev)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Allocate(&Node{Speed: 0}, 10); err == nil {
		t.Error("zero speed should fail")
	}
	bad := &Node{Speed: 1, Children: []*Node{{Speed: 1, Bandwidth: 0}}}
	if _, err := Allocate(bad, 10); err == nil {
		t.Error("zero bandwidth child should fail")
	}
	if _, err := Allocate(&Node{Speed: 1}, -5); err == nil {
		t.Error("negative load should fail")
	}
	if _, err := Allocate(&Node{Speed: 1}, math.NaN()); err == nil {
		t.Error("NaN load should fail")
	}
	root := &Node{Speed: 2}
	if root.Size() != 1 {
		t.Error("size of singleton")
	}
}

// Property: allocations conserve load, keep every share non-negative, and
// finish times agree with the makespan on random trees.
func TestTreeAllocationProperty(t *testing.T) {
	f := func(seed int64, depthRaw, fanRaw uint8) bool {
		r := stats.NewRNG(seed)
		depth := int(depthRaw%3) + 1
		fanout := int(fanRaw%3) + 1
		root := randomTree(r, depth, fanout)
		const n = 100.0
		alloc, err := Allocate(root, n)
		if err != nil {
			return false
		}
		if math.Abs(alloc.TotalLoad()-n) > 1e-6*n {
			return false
		}
		for _, l := range alloc.Loads {
			if l < 0 || math.IsNaN(l) {
				return false
			}
		}
		for _, finish := range alloc.FinishTime(root) {
			if math.Abs(finish-alloc.Makespan) > 1e-6*alloc.Makespan {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
