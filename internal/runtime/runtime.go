package runtime

import (
	"fmt"
	"sync"

	"nlfl/internal/matmul"
	"nlfl/internal/trace"
)

// Options configures the worker pool.
type Options struct {
	// Speeds are the workers' relative speeds (one entry per worker, all
	// positive). Required.
	Speeds []float64
	// WorkPerSecond is the cell-update rate of a speed-1 worker — the
	// token-bucket refill scale. 0 selects 2e6 cells/s, fast enough for
	// sub-second benches yet slow enough that the throttle (not the real
	// CPU) sets the pace, so relative speeds are honored even on one core.
	WorkPerSecond float64
	// Shards is the shared-queue stripe count; 0 selects min(workers, 8).
	Shards int
	// Burst is the token-bucket capacity in cells; 0 selects 5 ms of
	// credit at the worker's rate.
	Burst float64
	// VerifyEvery, when positive, spot-checks every VerifyEvery-th output
	// cell against a[i]·b[j] after the run and fails the run on mismatch.
	VerifyEvery int
}

// Report is the outcome of one measured run.
type Report struct {
	// Strategy, N, Grid and K echo the executed plan.
	Strategy string
	N        int
	Grid     int
	K        int
	// Workers is the pool size, Chunks the number of chunks executed.
	Workers int
	Chunks  int
	// Predicted is the plan's closed-form communication volume.
	Predicted float64
	// DataVolume is the measured volume: vector elements actually copied
	// into worker-local buffers, summed over chunks.
	DataVolume float64
	// WorkCells is the total output cells computed (= N² for a full run).
	WorkCells float64
	// Makespan is the wall-clock run time in seconds.
	Makespan float64
	// PerWorkerData and PerWorkerCells split DataVolume and WorkCells by
	// worker — the measured footprint behind the paper's Figure 2.
	PerWorkerData  []float64
	PerWorkerCells []float64
	// Out is the computed product.
	Out *matmul.Matrix
	// Trace is the run's audited timeline (wall-clock seconds).
	Trace *trace.Timeline
}

// Expect returns the invariant-oracle expectations for the run: exact
// work conservation (every cell computed once), the exact shipping ledger,
// and the strategy's analytic volume as an exact bound within relTol.
func (r *Report) Expect(relTol float64) *trace.Expect {
	nn := float64(r.N) * float64(r.N)
	return &trace.Expect{
		HasWork:       true,
		TotalWork:     nn,
		ProcessedWork: nn,
		HasComm:       true,
		ShippedData:   r.DataVolume,
		Bound:         r.Predicted,
		BoundKind:     trace.BoundExact,
		BoundName:     "Comm_" + r.Strategy,
		Tol:           relTol,
	}
}

// Run executes the plan on real vectors: len(Speeds) goroutine workers
// pull chunks from the sharded queue, ship each chunk's a̅/b̅ intervals
// into worker-local buffers (the Comm span), pay the chunk's area to their
// token bucket and fill the output rectangle through the tiled kernel (the
// Compute span). The returned report carries the product, the measured
// per-worker traffic, and the trace.Live timeline of the run.
func Run(plan *StrategyPlan, a, b []float64, opts Options) (*Report, error) {
	n := plan.N
	if len(a) != n || len(b) != n {
		return nil, fmt.Errorf("runtime: plan is for N=%d, got vectors of %d and %d", n, len(a), len(b))
	}
	if n == 0 {
		return nil, fmt.Errorf("runtime: empty vectors")
	}
	p := len(opts.Speeds)
	if p == 0 {
		return nil, fmt.Errorf("runtime: need at least one worker speed")
	}
	for i, s := range opts.Speeds {
		if s <= 0 {
			return nil, fmt.Errorf("runtime: worker %d has non-positive speed %v", i, s)
		}
	}
	totalCells := 0
	for _, c := range plan.Chunks {
		if c.RowLo < 0 || c.ColLo < 0 || c.RowHi > n || c.ColHi > n || c.Cells() <= 0 {
			return nil, fmt.Errorf("runtime: chunk %d has invalid bounds rows[%d,%d) cols[%d,%d)", c.Task, c.RowLo, c.RowHi, c.ColLo, c.ColHi)
		}
		if c.Owner >= p {
			return nil, fmt.Errorf("runtime: chunk %d owned by worker %d of %d", c.Task, c.Owner, p)
		}
		totalCells += c.Cells()
	}
	if totalCells != n*n {
		return nil, fmt.Errorf("runtime: chunks cover %d cells, domain has %d", totalCells, n*n)
	}
	rate := opts.WorkPerSecond
	if rate <= 0 {
		rate = 2e6
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = min(p, 8)
	}

	out := matmul.New(n, n)
	queue := newWorkQueue(plan.Chunks, p, shards)
	live := trace.NewLive(p)
	perData := make([]float64, p)
	perCells := make([]float64, p)

	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			bucket := newTokenBucket(opts.Speeds[w]*rate, opts.Burst)
			var aBuf, bBuf []float64
			for {
				c, ok := queue.pop(w)
				if !ok {
					return
				}
				// Ship the chunk's inputs: the only elements this worker
				// may read are the copies it just received.
				t0 := live.Now()
				aBuf = append(aBuf[:0], a[c.RowLo:c.RowHi]...)
				bBuf = append(bBuf[:0], b[c.ColLo:c.ColHi]...)
				t1 := live.Now()
				live.Add(w, trace.Span{Kind: trace.Comm, Start: t0, End: t1,
					Data: float64(c.Data()), Task: c.Task})

				// Compute: the token bucket stretches the span to the
				// duration a speed-sᵢ processor would need.
				cells := float64(c.Cells())
				bucket.acquire(cells)
				fillChunk(out, aBuf, bBuf, c)
				t2 := live.Now()
				live.Add(w, trace.Span{Kind: trace.Compute, Start: t1, End: t2,
					Work: cells, Task: c.Task})

				perData[w] += float64(c.Data())
				perCells[w] += cells
			}
		}(w)
	}
	wg.Wait()

	tl := live.Timeline()
	rep := &Report{
		Strategy:       plan.Strategy,
		N:              n,
		Grid:           plan.Grid,
		K:              plan.K,
		Workers:        p,
		Chunks:         len(plan.Chunks),
		Predicted:      plan.Predicted,
		WorkCells:      float64(totalCells),
		Makespan:       tl.Makespan,
		PerWorkerData:  perData,
		PerWorkerCells: perCells,
		Out:            out,
		Trace:          tl,
	}
	for _, d := range perData {
		rep.DataVolume += d
	}
	if opts.VerifyEvery > 0 {
		for idx := 0; idx < n*n; idx += opts.VerifyEvery {
			i, j := idx/n, idx%n
			if want := a[i] * b[j]; out.Data[idx] != want {
				return nil, fmt.Errorf("runtime: output cell (%d,%d) = %v, want %v", i, j, out.Data[idx], want)
			}
		}
	}
	return rep, nil
}

// fillChunk writes the chunk's rectangle of the outer product from the
// worker-local copies, tiling the column range like matmul.OuterInto.
func fillChunk(out *matmul.Matrix, aBuf, bBuf []float64, c Chunk) {
	bs := matmul.AutotuneTile()
	n := out.Cols
	for jj := 0; jj < len(bBuf); jj += bs {
		jMax := min(jj+bs, len(bBuf))
		bTile := bBuf[jj:jMax]
		for i, av := range aBuf {
			base := (c.RowLo+i)*n + c.ColLo
			row := out.Data[base+jj : base+jMax]
			for j, bv := range bTile {
				row[j] = av * bv
			}
		}
	}
}
