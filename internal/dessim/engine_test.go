package dessim

import (
	"math"
	"testing"
)

func TestEngineOrdersEvents(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(3, func() { order = append(order, 3) })
	e.At(1, func() { order = append(order, 1) })
	e.At(2, func() { order = append(order, 2) })
	end := e.Run()
	if end != 3 {
		t.Errorf("final time = %v, want 3", end)
	}
	for i, v := range []int{1, 2, 3} {
		if order[i] != v {
			t.Fatalf("order = %v", order)
		}
	}
	if e.Steps() != 3 {
		t.Errorf("steps = %d", e.Steps())
	}
}

func TestEngineFIFOAtEqualTimes(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(1, func() { order = append(order, i) })
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("equal-time events not FIFO: %v", order)
		}
	}
}

func TestEngineAfterAndNesting(t *testing.T) {
	e := NewEngine()
	var times []float64
	e.At(1, func() {
		times = append(times, e.Now())
		e.After(2, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Errorf("times = %v, want [1 3]", times)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	ran := 0
	for _, tt := range []float64{1, 2, 3, 4, 5} {
		e.At(tt, func() { ran++ })
	}
	n := e.RunUntil(3)
	if n != 3 || ran != 3 {
		t.Errorf("RunUntil executed %d/%d events, want 3", n, ran)
	}
	if e.Now() != 3 {
		t.Errorf("now = %v, want 3", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("pending = %d, want 2", e.Pending())
	}
	// RunUntil past all events advances the clock.
	e.RunUntil(10)
	if e.Now() != 10 || e.Pending() != 0 {
		t.Errorf("now=%v pending=%d", e.Now(), e.Pending())
	}
}

func TestEnginePanicsOnCausalityViolation(t *testing.T) {
	e := NewEngine()
	e.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		e.At(1, func() {})
	})
	e.Run()

	defer func() {
		if recover() == nil {
			t.Error("negative After should panic")
		}
	}()
	e.After(-1, func() {})
}

func TestEnginePanicsOnNaN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NaN time should panic")
		}
	}()
	NewEngine().At(math.NaN(), func() {})
}

func TestEngineZeroDurationEvent(t *testing.T) {
	// After(0) from inside an event must fire at the same clock value,
	// after the currently running event (FIFO), not be lost or reordered.
	e := NewEngine()
	var order []string
	e.At(1, func() {
		order = append(order, "outer")
		e.After(0, func() {
			order = append(order, "inner")
			if e.Now() != 1 {
				t.Errorf("zero-duration event fired at %v, want 1", e.Now())
			}
		})
	})
	e.At(1, func() { order = append(order, "sibling") })
	if end := e.Run(); end != 1 {
		t.Errorf("makespan = %v, want 1", end)
	}
	want := []string{"outer", "sibling", "inner"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineScheduleAtCurrentClock(t *testing.T) {
	// Scheduling exactly at Now() (not in the past) is legal, both before
	// the run starts and from inside an event.
	e := NewEngine()
	ran := 0
	e.At(0, func() {
		ran++
		e.At(e.Now(), func() { ran++ }) // t == now: allowed
	})
	e.Run()
	if ran != 2 {
		t.Errorf("ran %d events, want 2", ran)
	}
}

func TestEngineCancelPendingEvent(t *testing.T) {
	e := NewEngine()
	var fired []int
	e.At(1, func() { fired = append(fired, 1) })
	h := e.Schedule(2, func() { fired = append(fired, 2) })
	e.At(3, func() { fired = append(fired, 3) })
	h.Cancel()
	if !h.Cancelled() {
		t.Error("handle should report cancelled")
	}
	if e.Pending() != 2 {
		t.Errorf("pending = %d, want 2 (cancelled event excluded)", e.Pending())
	}
	end := e.Run()
	if end != 3 {
		t.Errorf("makespan = %v, want 3", end)
	}
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 3 {
		t.Errorf("fired = %v, want [1 3]", fired)
	}
	if e.Steps() != 2 {
		t.Errorf("steps = %d, want 2 (cancelled events are not steps)", e.Steps())
	}
}

func TestEngineCancelFiredEventIsNoop(t *testing.T) {
	// Cancelling an event that already fired must be a no-op, not a panic,
	// and must not disturb the rest of the run.
	e := NewEngine()
	ran := 0
	h := e.Schedule(1, func() { ran++ })
	e.At(2, func() {
		h.Cancel() // h fired at t=1; this must do nothing
		if h.Cancelled() {
			t.Error("a fired event must not become cancelled")
		}
		if !h.Fired() {
			t.Error("handle should report fired")
		}
		ran++
	})
	e.Run()
	if ran != 2 {
		t.Errorf("ran %d events, want 2", ran)
	}
	h.Cancel() // and again after the run drains: still a no-op
}

func TestEngineCancelNilAndZeroHandles(t *testing.T) {
	var nilH *Handle
	nilH.Cancel() // must not panic
	var zero Handle
	zero.Cancel() // must not panic
	if nilH.Cancelled() || zero.Cancelled() || nilH.Fired() || zero.Fired() {
		t.Error("inert handles should report neither cancelled nor fired")
	}
}

func TestEngineCancelledTailDoesNotAdvanceClock(t *testing.T) {
	// A cancelled event at the end of the queue must not drag the clock
	// (and hence the reported makespan) forward.
	e := NewEngine()
	e.At(1, func() {})
	h := e.Schedule(100, func() { t.Error("cancelled event ran") })
	h.Cancel()
	if end := e.Run(); end != 1 {
		t.Errorf("makespan = %v, want 1 (cancelled tail ignored)", end)
	}
}

func TestResourceBooking(t *testing.T) {
	var r Resource
	s, e := r.Book(0, 5)
	if s != 0 || e != 5 {
		t.Errorf("first booking = [%v,%v], want [0,5]", s, e)
	}
	// Second booking at t=2 must wait for the resource.
	s, e = r.Book(2, 3)
	if s != 5 || e != 8 {
		t.Errorf("second booking = [%v,%v], want [5,8]", s, e)
	}
	// Booking after the free time starts immediately.
	s, e = r.Book(10, 1)
	if s != 10 || e != 11 {
		t.Errorf("third booking = [%v,%v], want [10,11]", s, e)
	}
	if r.BusyTime() != 9 {
		t.Errorf("busy = %v, want 9", r.BusyTime())
	}
	if r.FreeAt() != 11 {
		t.Errorf("freeAt = %v, want 11", r.FreeAt())
	}
}

func TestResourceNegativeDurationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative duration should panic")
		}
	}()
	var r Resource
	r.Book(0, -1)
}
