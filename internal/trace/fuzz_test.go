package trace_test

// FuzzTimelineCheck feeds arbitrary span sets into the invariant checker
// and the renderers: whatever bytes decode to, Check must return a
// deterministic, well-addressed verdict and MetricsOf/Gantt/ChromeTrace
// must not panic. The seed corpus is encoded from real executor runs so
// the fuzzer starts from realistic span layouts.

import (
	"encoding/json"
	"testing"

	"nlfl/internal/dessim"
	"nlfl/internal/faults"
	"nlfl/internal/mapreduce"
	"nlfl/internal/platform"
	nrt "nlfl/internal/runtime"
	"nlfl/internal/stats"
	"nlfl/internal/trace"
)

// decodeTimeline maps arbitrary bytes onto a timeline: byte 0 picks the
// worker count, each following 8-byte group one span or relay record
// (byte 1 selects: 0 compute span, 1 comm span, 2 relay — starts and
// durations may decode negative to exercise the malformed paths), and
// the tail bytes become markers.
func decodeTimeline(data []byte) *trace.Timeline {
	if len(data) == 0 {
		return trace.New(0)
	}
	p := int(data[0])%8 + 1
	tl := trace.New(p)
	i := 1
	for ; i+8 <= len(data); i += 8 {
		b := data[i : i+8]
		if int(b[1])%3 == 2 {
			r := trace.Relay{
				Edge:  int(b[0]) % 8,
				Dest:  int(b[7]) % p,
				Start: float64(int(b[3])-32) / 8,
				Data:  float64(b[5]) / 4,
				Task:  int(b[6]) - 1,
			}
			r.End = r.Start + float64(int(b[4])-16)/16
			tl.AddRelay(r)
			continue
		}
		s := trace.Span{
			Kind:    trace.SpanKind(int(b[1]) % 2),
			Outcome: trace.Outcome(int(b[2]) % 4),
			Start:   float64(int(b[3])-32) / 8,
			Data:    float64(b[5]) / 4,
			Work:    float64(b[6]) / 4,
			Task:    int(b[7]) - 1,
		}
		s.End = s.Start + float64(int(b[4])-16)/16
		tl.Add(int(b[0])%p, s)
	}
	for ; i < len(data); i++ {
		tl.Mark(trace.Marker{
			Kind:   trace.MarkerKind(int(data[i]) % 3),
			Worker: int(data[i]) % p,
			Time:   float64(int(data[i])-16) / 8,
		})
	}
	return tl
}

// encodeTimeline quantizes a real timeline into the fuzz byte format, for
// the seed corpus. Lossy on purpose: the corpus seeds span *shapes*, not
// exact values.
func encodeTimeline(tl *trace.Timeline) []byte {
	clamp := func(v float64) byte {
		if v < 0 {
			return 0
		}
		if v > 255 {
			return 255
		}
		return byte(v)
	}
	p := tl.Workers()
	if p == 0 {
		return nil
	}
	out := []byte{byte(p - 1)}
	for w, spans := range tl.Spans {
		for _, s := range spans {
			out = append(out,
				byte(w),
				byte(s.Kind),
				byte(s.Outcome),
				clamp(s.Start*8+32),
				clamp((s.End-s.Start)*16+16),
				clamp(s.Data*4),
				clamp(s.Work*4),
				clamp(float64(s.Task+1)),
			)
		}
	}
	for _, r := range tl.Relays {
		out = append(out,
			clamp(float64(r.Edge)),
			2, // relay selector
			0,
			clamp(r.Start*8+32),
			clamp((r.End-r.Start)*16+16),
			clamp(r.Data*4),
			clamp(float64(r.Task+1)),
			clamp(float64(r.Dest)),
		)
	}
	for _, m := range tl.Marks {
		out = append(out, clamp(m.Time*8+16))
	}
	return out
}

func FuzzTimelineCheck(f *testing.F) {
	// Corpus from real runs: a crashy resilient run, a static single-round
	// run under the same faults, and a speculative MapReduce run.
	pl, err := platform.Generate(4, platform.ProfileUniform.Distribution(0), stats.NewRNG(7))
	if err != nil {
		f.Fatal(err)
	}
	pool := make([]dessim.Task, 12)
	for i := range pool {
		pool[i] = dessim.Task{Data: 1, Work: 2}
	}
	sc, err := faults.RandomCrashes(4, 2, 3, 7)
	if err != nil {
		f.Fatal(err)
	}
	if rep, err := faults.RunResilientDemandDriven(pl, pool, sc, faults.ResilientOptions{}); err == nil {
		f.Add(encodeTimeline(rep.Trace))
	}
	if rep, err := faults.RunSingleRoundUnderFaults(pl, faults.LinearDLTChunks(pl, 12, 24), sc); err == nil {
		f.Add(encodeTimeline(rep.Trace))
	}
	if tasks, err := mapreduce.UniformTasks(9, 1, 2); err == nil {
		if res, err := mapreduce.Schedule(pl, tasks, true); err == nil {
			f.Add(encodeTimeline(res.Trace))
		}
	}
	// Topology-shaped seeds: a daisy-chain run (relay records on interior
	// hops) and a two-source run (disjoint delivery edges).
	if mp, err := platform.FromSpeeds([]float64{1, 2, 3}); err == nil {
		a := make([]float64, 12)
		b := make([]float64, 12)
		for i := range a {
			a[i], b[i] = float64(i+1), float64(12-i)
		}
		if plan, err := nrt.PlanHet(mp, 12); err == nil {
			for _, topo := range []nrt.Topology{
				nrt.UniformChain(3, 5e4),
				nrt.SplitTwoSource(3, 5e4, 5e4),
			} {
				if rep, err := nrt.Run(plan, a, b, nrt.Options{
					Speeds: mp.Speeds(), WorkPerSecond: 2e5, Topology: topo,
				}); err == nil {
					f.Add(encodeTimeline(rep.Trace))
				}
			}
		}
	}
	f.Add([]byte{})
	f.Add([]byte{3, 0, 1, 0, 200, 5, 8, 8, 2})
	// One handcrafted relay group: edge 1, [0, 0.5), 2 data units, dest 2.
	f.Add([]byte{3, 1, 2, 0, 32, 24, 8, 3, 2})

	f.Fuzz(func(t *testing.T, data []byte) {
		tl := decodeTimeline(data)
		p := tl.Workers()

		vs := trace.Check(tl, nil)
		for _, v := range vs {
			if v.Worker < -1 || v.Worker >= p {
				t.Fatalf("violation addresses worker %d of %d: %v", v.Worker, p, v)
			}
			if v.Detail == "" {
				t.Fatalf("violation with empty detail: %#v", v)
			}
		}
		// Determinism: checking the same timeline twice gives the same
		// verdict, and Must agrees with the list.
		vs2 := trace.Check(tl, nil)
		if len(vs) != len(vs2) {
			t.Fatalf("Check is nondeterministic: %d then %d violations", len(vs), len(vs2))
		}
		for i := range vs {
			if vs[i] != vs2[i] {
				t.Fatalf("violation %d changed: %v then %v", i, vs[i], vs2[i])
			}
		}
		if (trace.Must(vs) == nil) != (len(vs) == 0) {
			t.Fatal("Must disagrees with the violation list")
		}

		// The aggregations and renderers must accept anything that decodes.
		m := trace.MetricsOf(tl)
		if m.Spans < 0 || m.Faults != len(tl.Marks) {
			t.Fatalf("metrics miscount: %+v", m)
		}
		_ = tl.Gantt(40)
		b, err := tl.ChromeTrace()
		if err != nil {
			t.Fatalf("ChromeTrace: %v", err)
		}
		if !json.Valid(b) {
			t.Fatal("ChromeTrace emitted invalid JSON")
		}

		// Checking with a ledger must be equally safe.
		_ = trace.Check(tl, &trace.Expect{
			HasWork: true, TotalWork: m.UsefulWork, ProcessedWork: m.UsefulWork,
			LostWork: m.LostWork, WastedWork: m.WastedWork,
			HasComm: true, ShippedData: m.CommVolume,
			Bound: m.CommVolume, BoundKind: trace.BoundUpper,
			ImbalanceTarget: 0.01,
		})
		// And with the per-edge invariant armed: fewer declared edges than
		// the decoder can address, so the unknown-edge path is reachable.
		vsE := trace.Check(tl, &trace.Expect{
			Edges: []trace.ExpectEdge{
				{Name: "e0", Capacity: 4},
				{Name: "e1"}, // uncapped: volume-only bookkeeping
				{Name: "e2", Capacity: 8, Volume: m.CommVolume, HasVolume: true},
			},
			Routes: [][]int{{0}, {0, 2}, {1}},
		})
		for _, v := range vsE {
			if v.Worker < -1 || v.Worker >= p {
				t.Fatalf("edge violation addresses worker %d of %d: %v", v.Worker, p, v)
			}
		}
	})
}
