package service_test

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	nrt "nlfl/internal/runtime"
	"nlfl/internal/service"
)

// ExampleFleet shows the fleet's admission story end to end: a job is
// autoscaled to the capacity model's knee (3 of the 4 workers — the
// fourth would add under 5% speedup for its input shipping), completes
// with an exact volume ledger, and a deadline no admissible slice can
// meet is shed at the door with the typed amdahl-cap reason.
func ExampleFleet() {
	fleet, err := service.New(service.Config{
		Speeds:         []float64{1, 2, 3, 4},
		WorkPerSecond:  3e4,
		Link:           nrt.Link{ElemsPerSecond: 2.5e4},
		AutoscaleTheta: 0.05,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer fleet.Close()

	h, err := fleet.Submit(service.JobSpec{Tenant: "a", N: 64, Strategy: "het", Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := h.Wait(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("autoscaled to %d of 4 workers\n", len(rep.Workers))
	fmt.Printf("ledger exact: %v\n", rep.CommittedVolume == rep.PlanVolume)

	_, err = fleet.Submit(service.JobSpec{Tenant: "a", N: 96, Deadline: time.Millisecond})
	var ae *service.AdmissionError
	if errors.As(err, &ae) {
		fmt.Printf("rejected: %s\n", ae.Reason)
	}
	// Output:
	// autoscaled to 3 of 4 workers
	// ledger exact: true
	// rejected: amdahl-cap
}
