package dessim

import "testing"

// countingSink records every lifecycle callback in order.
type countingSink struct {
	scheduled, fired, cancelled int
	lastSeq                     int64
	lastNow                     float64
}

func (s *countingSink) EventScheduled(seq int64, now, at float64) {
	s.scheduled++
	s.lastSeq = seq
}
func (s *countingSink) EventFired(seq int64, at float64) { s.fired++ }
func (s *countingSink) EventCancelled(seq int64, now float64) {
	s.cancelled++
	s.lastNow = now
}

func TestEngineSinkLifecycle(t *testing.T) {
	eng := NewEngine()
	sink := &countingSink{}
	eng.SetSink(sink)
	var h *Handle
	eng.At(1, func() {
		h.Cancel() // cancel the later event from inside an earlier one
	})
	h = eng.Schedule(2, func() { t.Error("cancelled event fired") })
	eng.Schedule(3, func() {})
	eng.Run()
	if sink.scheduled != 3 || sink.fired != 2 || sink.cancelled != 1 {
		t.Errorf("sink counts: %+v", sink)
	}
	if sink.lastNow != 1 {
		t.Errorf("cancellation observed at %v, want 1 (the cancelling event's time)", sink.lastNow)
	}
	// Double-cancel must not re-notify.
	h.Cancel()
	if sink.cancelled != 1 {
		t.Error("double cancel re-notified the sink")
	}
	// Detaching stops notifications.
	eng.SetSink(nil)
	eng.Schedule(4, func() {})
	eng.Run()
	if sink.scheduled != 3 || sink.fired != 2 {
		t.Errorf("detached sink still notified: %+v", sink)
	}
}

func TestResourceBookingsRecord(t *testing.T) {
	var r Resource
	r.Book(0, 1) // not recorded: capture is off
	r.Record(true)
	s1, e1 := r.Book(0, 2) // queues behind the first booking
	s2, e2 := r.Book(1, 1)
	bs := r.Bookings()
	if len(bs) != 2 {
		t.Fatalf("got %d bookings, want 2 (pre-Record booking must not appear)", len(bs))
	}
	if bs[0] != (Booking{Start: s1, End: e1}) || bs[1] != (Booking{Start: s2, End: e2}) {
		t.Errorf("bookings %v, want [{%v %v} {%v %v}]", bs, s1, e1, s2, e2)
	}
	if s1 != 1 || e1 != 3 || s2 != 3 || e2 != 4 {
		t.Errorf("booking times: [%v,%v] [%v,%v]", s1, e1, s2, e2)
	}
	// Bookings returns a copy, not the internal slice.
	bs[0].Start = -99
	if r.Bookings()[0].Start == -99 {
		t.Error("Bookings exposed internal state")
	}
	r.Record(false)
	r.Book(10, 1)
	if len(r.Bookings()) != 2 {
		t.Error("booking recorded while capture was off")
	}
}
