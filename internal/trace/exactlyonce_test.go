package trace

import "testing"

// exactlyOnceTimeline builds a two-worker timeline in which task 0 was
// retried (a Killed copy), task 1 was speculated (a Wasted losing copy)
// and every task nonetheless committed exactly once.
func exactlyOnceTimeline() *Timeline {
	tl := New(2)
	tl.Add(0, Span{Kind: Compute, Start: 0, End: 1, Work: 4, Task: 0, Outcome: Killed})
	tl.Add(1, Span{Kind: Compute, Start: 1, End: 2, Work: 4, Task: 0, Outcome: OK})
	tl.Add(0, Span{Kind: Compute, Start: 1, End: 3, Work: 4, Task: 1, Outcome: Wasted})
	tl.Add(1, Span{Kind: Compute, Start: 2, End: 3, Work: 4, Task: 1, Outcome: OK})
	tl.Makespan = 3
	return tl
}

func TestCheckExactlyOnceCleanUnderRetriesAndSpeculation(t *testing.T) {
	tl := exactlyOnceTimeline()
	vs := Check(tl, &Expect{ExactlyOnce: true})
	if len(vs) != 0 {
		t.Fatalf("clean resilient timeline flagged: %v", vs)
	}
}

// TestCheckExactlyOnceTripsOnDoubleCommit is the broken-runtime negative
// test: an executor that lets both copies of a speculated task commit
// (two OK spans for one task id) must trip the oracle.
func TestCheckExactlyOnceTripsOnDoubleCommit(t *testing.T) {
	tl := exactlyOnceTimeline()
	// The losing copy of task 1 "commits" too — first-writer-wins broke.
	tl.Spans[0][1].Outcome = OK
	vs := Check(tl, &Expect{ExactlyOnce: true})
	if len(vs) != 1 {
		t.Fatalf("double commit: got %d violations (%v), want 1", len(vs), vs)
	}
	if vs[0].Kind != DuplicateCommit || vs[0].Task != 1 {
		t.Fatalf("double commit flagged as %v, want %v on task 1", vs[0], DuplicateCommit)
	}
}

func TestCheckExactlyOnceIgnoresNegativeTasksAndIsOptIn(t *testing.T) {
	tl := New(1)
	// Task -1 is "no task"; two OK spans with it are not a duplicate.
	tl.Add(0, Span{Kind: Compute, Start: 0, End: 1, Work: 1, Task: -1, Outcome: OK})
	tl.Add(0, Span{Kind: Compute, Start: 1, End: 2, Work: 1, Task: -1, Outcome: OK})
	// A genuine duplicate, but ExactlyOnce is off.
	tl.Add(0, Span{Kind: Compute, Start: 2, End: 3, Work: 1, Task: 7, Outcome: OK})
	tl.Add(0, Span{Kind: Compute, Start: 3, End: 4, Work: 1, Task: 7, Outcome: OK})
	tl.Makespan = 4
	if vs := Check(tl, &Expect{ExactlyOnce: true}); len(vs) != 1 {
		t.Fatalf("want exactly the task-7 duplicate, got %v", vs)
	}
	if vs := Check(tl, &Expect{}); len(vs) != 0 {
		t.Fatalf("ExactlyOnce off must not flag duplicates, got %v", vs)
	}
}
