// Package bench is the reproducible measured-performance harness: it
// times the dense kernels (internal/matmul) and the worker-pool runtime
// (internal/runtime) across problem sizes, worker counts and distribution
// strategies, cross-checks every measured communication volume against
// the paper's closed forms (Comm_hom = 2N·√(Σsᵢ/s₁) and friends), audits
// every runtime trace with the invariant oracle, and emits the
// machine-readable BENCH_kernels.json / BENCH_runtime.json /
// BENCH_link.json records that seed the repository's performance
// trajectory.
//
// Geometry — grids, chunk counts, per-strategy communication volumes — is
// deterministic given the seed; wall-clock timings are not, which is why
// the volume cross-checks gate on the deterministic ledger and the
// timings are recorded as environment-stamped observations. See
// docs/PERFORMANCE.md for how to read the output and EXPERIMENTS.md for
// the regeneration recipe.
package bench

import (
	"path/filepath"
	"runtime"
)

// KernelsFileName, RuntimeFileName, LinkFileName, ChaosFileName,
// ServiceFileName, TopologyFileName, CapacityFileName and
// IterativeFileName are the emitted artifact names.
const (
	KernelsFileName   = "BENCH_kernels.json"
	RuntimeFileName   = "BENCH_runtime.json"
	LinkFileName      = "BENCH_link.json"
	ChaosFileName     = "BENCH_chaos.json"
	ServiceFileName   = "BENCH_service.json"
	TopologyFileName  = "BENCH_topology.json"
	CapacityFileName  = "BENCH_capacity.json"
	IterativeFileName = "BENCH_iterative.json"
)

// Config selects the measurement envelope.
type Config struct {
	// Seed drives every random input (matrices, vectors). Identical seeds
	// reproduce identical geometry and volumes.
	Seed int64
	// Quick selects the reduced CI configuration: smaller sizes, fewer
	// repetitions, two platforms instead of four.
	Quick bool
	// WorkPerSecond overrides the runtime token-bucket rate scale
	// (cells/second for a speed-1 worker); 0 selects 2e6.
	WorkPerSecond float64
}

// maxProcs reports the measurement environment's parallelism.
func maxProcs() int { return runtime.GOMAXPROCS(0) }

// ArtifactPaths names every bench artifact under one output directory.
type ArtifactPaths struct {
	Kernels   string
	Runtime   string
	Link      string
	Chaos     string
	Service   string
	Topology  string
	Capacity  string
	Iterative string
}

// List returns the paths in emission order, for callers that iterate.
func (a ArtifactPaths) List() []string {
	return []string{a.Kernels, a.Runtime, a.Link, a.Chaos, a.Service, a.Topology, a.Capacity, a.Iterative}
}

// Paths returns the artifact paths under dir.
func Paths(dir string) ArtifactPaths {
	return ArtifactPaths{
		Kernels:   filepath.Join(dir, KernelsFileName),
		Runtime:   filepath.Join(dir, RuntimeFileName),
		Link:      filepath.Join(dir, LinkFileName),
		Chaos:     filepath.Join(dir, ChaosFileName),
		Service:   filepath.Join(dir, ServiceFileName),
		Topology:  filepath.Join(dir, TopologyFileName),
		Capacity:  filepath.Join(dir, CapacityFileName),
		Iterative: filepath.Join(dir, IterativeFileName),
	}
}
