// Package tree extends linear Divisible Load Theory from the star
// (single-level tree) of the paper's Section 1.2 to arbitrary multi-level
// trees — the topology family of the non-linear DLT literature the paper
// refutes ("a single level tree network", refs [33, 34]) and of classical
// DLT at large.
//
// Under linear costs, store-and-forward relaying, and parallel links at
// every node, each subtree collapses into an *equivalent processor* with
// a single absorption rate R (load per unit of deadline):
//
//	leaf:      R = 1/(c + w)
//	internal:  S = 1/w₀ + Σ R(child),   R = S/(1 + c₀·S)
//
// where c₀ is the node's ingress cost and w₀ its own unit compute time.
// The optimal single-round schedule gives every node a load that makes
// all finish times equal; the root absorbs N in makespan T = N/S(root).
// This recursion is exactly the classical equivalent-processor reduction,
// and for depth-1 trees it reproduces dlt.OptimalParallel.
//
// The no-free-lunch of Section 2 is topology-free: chunking an α-power
// load loses work on a tree exactly as on a star (see WorkFraction).
package tree

import (
	"errors"
	"fmt"
	"math"
)

// Node is one machine of the tree platform.
type Node struct {
	// Name labels the node in reports (optional).
	Name string
	// Speed is the node's own compute speed (s = 1/w); every node,
	// including relays, may compute.
	Speed float64
	// Bandwidth is the node's ingress link bandwidth (1/c). Ignored for
	// the root (the load originates there).
	Bandwidth float64
	// Children are the subtrees fed by this node.
	Children []*Node
}

// Validate checks speeds and bandwidths throughout the tree.
func (n *Node) Validate(isRoot bool) error {
	if n == nil {
		return errors.New("tree: nil node")
	}
	if n.Speed <= 0 || math.IsNaN(n.Speed) || math.IsInf(n.Speed, 0) {
		return fmt.Errorf("tree: node %q has invalid speed %v", n.Name, n.Speed)
	}
	if !isRoot && (n.Bandwidth <= 0 || math.IsNaN(n.Bandwidth) || math.IsInf(n.Bandwidth, 0)) {
		return fmt.Errorf("tree: node %q has invalid bandwidth %v", n.Name, n.Bandwidth)
	}
	for _, c := range n.Children {
		if err := c.Validate(false); err != nil {
			return err
		}
	}
	return nil
}

// Size returns the number of nodes in the subtree.
func (n *Node) Size() int {
	s := 1
	for _, c := range n.Children {
		s += c.Size()
	}
	return s
}

// capacity returns S(n) = 1/w + Σ R(child): the load the subtree absorbs
// per unit of deadline measured *after* n has received its data.
func (n *Node) capacity() float64 {
	s := n.Speed // 1/w
	for _, c := range n.Children {
		s += c.rate()
	}
	return s
}

// rate returns R(n) = S/(1 + c·S), the equivalent-processor absorption
// rate seen from n's parent (through n's ingress link).
func (n *Node) rate() float64 {
	s := n.capacity()
	cIn := 1 / n.Bandwidth
	return s / (1 + cIn*s)
}

// Allocation maps each node to its assigned load.
type Allocation struct {
	// Loads[node] is the load the node itself computes.
	Loads map[*Node]float64
	// Makespan is the common finish time.
	Makespan float64
}

// Allocate computes the optimal single-round allocation of a linear load
// of size n across the tree rooted at root (whose ingress link is unused:
// the load originates there). All nodes finish at the makespan.
func Allocate(root *Node, n float64) (*Allocation, error) {
	if err := root.Validate(true); err != nil {
		return nil, err
	}
	if n < 0 || math.IsNaN(n) {
		return nil, fmt.Errorf("tree: invalid load %v", n)
	}
	s := root.capacity()
	alloc := &Allocation{Loads: make(map[*Node]float64, root.Size()), Makespan: n / s}
	assign(root, n, alloc.Makespan, alloc.Loads)
	return alloc, nil
}

// assign splits `load` arriving at node (fully received, with `deadline`
// time remaining) between the node's own CPU and its children.
func assign(n *Node, load, deadline float64, out map[*Node]float64) {
	own := n.Speed * deadline // X₀ = deadline/w
	// Scale against rounding: own + Σ child shares must equal load.
	s := n.capacity()
	scale := load / (s * deadline)
	out[n] = own * scale
	for _, c := range n.Children {
		childLoad := c.rate() * deadline * scale
		// The child spends cᵢ·Xᵢ receiving; the rest of the deadline
		// drives its own subtree.
		childDeadline := deadline - childLoad/c.Bandwidth
		assign(c, childLoad, childDeadline, out)
	}
}

// FinishTime returns when `node` completes its assigned load if data
// starts flowing at time 0 from the root: used to verify the equal-finish
// property of the optimal schedule.
func (a *Allocation) FinishTime(root *Node) map[*Node]float64 {
	out := make(map[*Node]float64, len(a.Loads))
	var walk func(n *Node, start float64)
	walk = func(n *Node, start float64) {
		// Node computes its own share last-ditch: with linear costs the
		// equal-finish schedule has every node computing until the common
		// makespan; its finish is start + w·X₀ only if it computes
		// continuously from `start`.
		out[n] = start + a.Loads[n]/n.Speed
		for _, c := range n.Children {
			// The child's transfer takes cᵢ·(total subtree load).
			sub := subtreeLoad(c, a.Loads)
			walk(c, start+sub/c.Bandwidth)
		}
	}
	walk(root, 0)
	return out
}

// subtreeLoad sums the allocation over a subtree.
func subtreeLoad(n *Node, loads map[*Node]float64) float64 {
	s := loads[n]
	for _, c := range n.Children {
		s += subtreeLoad(c, loads)
	}
	return s
}

// TotalLoad sums all assigned loads (should equal the requested n).
func (a *Allocation) TotalLoad() float64 {
	s := 0.0
	for _, l := range a.Loads {
		s += l
	}
	return s
}

// WorkFraction returns ΣXᵢ^α / N^α for the allocation — the Section 2
// work accounting applied to the tree: for α > 1 it vanishes as the tree
// grows, exactly as on the star. Chunking, not topology, is the
// obstruction.
func (a *Allocation) WorkFraction(alpha float64) float64 {
	n := a.TotalLoad()
	if n == 0 {
		return 0
	}
	s := 0.0
	for _, l := range a.Loads {
		s += math.Pow(l, alpha)
	}
	return s / math.Pow(n, alpha)
}
