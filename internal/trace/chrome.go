package trace

import (
	"encoding/json"
	"fmt"
)

// chromeEvent is one record of the Chrome trace_event format (the JSON
// consumed by chrome://tracing and ui.perfetto.dev). Field order is fixed
// by the struct, argument maps marshal with sorted keys, so the output is
// byte-deterministic for a given timeline.
type chromeEvent struct {
	Name string             `json:"name"`
	Cat  string             `json:"cat"`
	Ph   string             `json:"ph"`
	Ts   float64            `json:"ts"`
	Dur  *float64           `json:"dur,omitempty"`
	Pid  int                `json:"pid"`
	Tid  int                `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// ChromeTrace renders the timeline as Chrome trace_event JSON: one thread
// per worker, complete ("X") events for spans, instant ("i") events for
// fault markers. Simulation time units map to seconds (ts is in
// microseconds, per the format). The output is deterministic: identical
// timelines serialize to identical bytes.
func (tl *Timeline) ChromeTrace() ([]byte, error) {
	const unit = 1e6 // sim time unit → μs
	f := chromeFile{DisplayTimeUnit: "ms"}
	f.TraceEvents = append(f.TraceEvents, chromeEvent{
		Name: "process_name", Cat: "__metadata", Ph: "M", Pid: 0, Tid: 0,
		Args: map[string]any{"name": "simulation"},
	})
	for w := range tl.Spans {
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: "thread_name", Cat: "__metadata", Ph: "M", Pid: 0, Tid: w,
			Args: map[string]any{"name": fmt.Sprintf("P%d", w+1)},
		})
	}
	for w, spans := range tl.Spans {
		for _, s := range spans {
			dur := (s.End - s.Start) * unit
			ev := chromeEvent{
				Name: fmt.Sprintf("%s task %d", s.Kind, s.Task),
				Cat:  fmt.Sprintf("%s,%s", s.Kind, s.Outcome),
				Ph:   "X",
				Ts:   s.Start * unit,
				Dur:  &dur,
				Pid:  0,
				Tid:  w,
				Args: map[string]any{
					"data": s.Data,
					"task": s.Task,
					"work": s.Work,
				},
			}
			f.TraceEvents = append(f.TraceEvents, ev)
		}
	}
	for _, m := range tl.Marks {
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: fmt.Sprintf("%s %s", m.Kind, m.Note),
			Cat:  "fault",
			Ph:   "i",
			Ts:   m.Time * unit,
			Pid:  0,
			Tid:  m.Worker,
			S:    "t",
		})
	}
	return json.MarshalIndent(f, "", " ")
}
