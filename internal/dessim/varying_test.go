package dessim

import (
	"math"
	"testing"
)

func unitEpochs(p int) []Epoch {
	f := make([]float64, p)
	for i := range f {
		f[i] = 1
	}
	return []Epoch{{Until: math.Inf(1), Factor: f}}
}

func TestVaryingConstantMatchesPlainDemandDriven(t *testing.T) {
	p := mustPlatform(t, 1, 3, 2)
	tasks := make([]Task, 30)
	for i := range tasks {
		tasks[i] = Task{Data: 0.5, Work: 2}
	}
	plain, err := RunDemandDriven(p, tasks, ParallelLinks)
	if err != nil {
		t.Fatal(err)
	}
	varying, err := RunDemandDrivenVarying(p, tasks, unitEpochs(3))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plain.Makespan-varying.Makespan) > 1e-9 {
		t.Errorf("constant profile: %v vs plain %v", varying.Makespan, plain.Makespan)
	}
	if math.Abs(plain.WorkDone()-varying.WorkDone()) > 1e-9 {
		t.Error("work accounting differs")
	}
}

func TestVaryingSlowdownShiftsWork(t *testing.T) {
	// Two equal workers; worker 0 drops to 1% speed at t=5. The demand-
	// driven pool must route the tail to worker 1.
	p := mustPlatform(t, 1, 1)
	tasks := make([]Task, 20)
	for i := range tasks {
		tasks[i] = Task{Data: 0, Work: 1}
	}
	epochs := []Epoch{
		{Until: 5, Factor: []float64{1, 1}},
		{Until: math.Inf(1), Factor: []float64{0.01, 1}},
	}
	tl, err := RunDemandDrivenVarying(p, tasks, epochs)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 2)
	for w, ivs := range tl.PerWorker {
		for _, iv := range ivs {
			if iv.Kind == Compute {
				counts[w]++
			}
		}
	}
	if counts[0]+counts[1] != 20 {
		t.Fatalf("counts %v", counts)
	}
	// Without the slowdown it would be 10/10; with it, worker 1 does the
	// bulk.
	if counts[1] < 13 {
		t.Errorf("healthy worker got %d tasks, expected most of the tail", counts[1])
	}
	if err := tl.Validate(); err != nil {
		t.Error(err)
	}
}

func TestVaryingFrozenWorkerRetires(t *testing.T) {
	// Worker 0 freezes permanently at t=0; worker 1 does everything.
	p := mustPlatform(t, 1, 1)
	tasks := make([]Task, 6)
	for i := range tasks {
		tasks[i] = Task{Work: 1}
	}
	epochs := []Epoch{{Until: math.Inf(1), Factor: []float64{0, 1}}}
	tl, err := RunDemandDrivenVarying(p, tasks, epochs)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.PerWorker[0]) != 0 {
		t.Errorf("frozen worker recorded intervals: %v", tl.PerWorker[0])
	}
	if tl.Makespan != 6 {
		t.Errorf("makespan = %v, want 6", tl.Makespan)
	}
}

func TestVaryingAllFrozenFails(t *testing.T) {
	p := mustPlatform(t, 1)
	epochs := []Epoch{{Until: math.Inf(1), Factor: []float64{0}}}
	if _, err := RunDemandDrivenVarying(p, []Task{{Work: 1}}, epochs); err == nil {
		t.Error("a fully starved pool should fail")
	}
}

func TestVaryingFinishAcrossEpochs(t *testing.T) {
	// Speed 2, factor 1 until t=3 then 0.5: 10 work from t=1:
	// [1,3): rate 2 → 4 done; remaining 6 at rate 1 → finishes at 3+6=9.
	pl := mustPlatform(t, 2)
	epochs := []Epoch{
		{Until: 3, Factor: []float64{1}},
		{Until: math.Inf(1), Factor: []float64{0.5}},
	}
	got := finishAcross(epochs, pl, 0, 1, 10)
	if math.Abs(got-9) > 1e-12 {
		t.Errorf("finish = %v, want 9", got)
	}
	// Zero work completes instantly.
	if finishAcross(epochs, pl, 0, 4, 0) != 4 {
		t.Error("zero work should finish at start")
	}
}

func TestVaryingEpochValidation(t *testing.T) {
	p := mustPlatform(t, 1, 1) // two workers
	cases := [][]Epoch{
		nil,
		{{Until: math.Inf(1), Factor: []float64{1}}},                                         // wrong width
		{{Until: 5, Factor: []float64{1, 1}}},                                                // finite last epoch
		{{Until: math.Inf(1), Factor: []float64{-1, 1}}},                                     // negative factor
		{{Until: 0, Factor: []float64{1, 1}}, {Until: math.Inf(1), Factor: []float64{1, 1}}}, // non-increasing boundary
	}
	for i, epochs := range cases {
		if _, err := RunDemandDrivenVarying(p, []Task{{Work: 1}}, epochs); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	if _, err := RunDemandDrivenVarying(p, []Task{{Work: -1}}, unitEpochs(2)); err == nil {
		t.Error("negative work should fail")
	}
}
