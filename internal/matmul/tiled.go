package matmul

import (
	"errors"
	"sync"
	"time"
)

// tileCandidates are the block sides the autotune probe races. They
// bracket the L1/L2-resident working sets of contemporary cores: a bs×bs
// float64 tile of each of A, B and C occupies 3·8·bs² bytes — 24 KiB at
// bs=32, 1.5 MiB at bs=256.
var tileCandidates = []int{32, 64, 128, 256}

// probeN is the matrix side the autotune probe multiplies. Large enough
// that the fastest candidate wins by cache behaviour rather than loop
// overhead, small enough that the one-off probe stays in the tens of
// milliseconds.
const probeN = 192

var (
	tileOnce sync.Once
	tileSize int
)

// AutotuneTile returns the tile side the tiled kernels use, measuring it
// once per process: each candidate multiplies the same seeded probeN×probeN
// pair through the blocked kernel and the fastest side wins. The result is
// cached — every later call is a plain load.
func AutotuneTile() int {
	tileOnce.Do(func() {
		a := Random(probeN, probeN, 7)
		b := Random(probeN, probeN, 11)
		c := New(probeN, probeN)
		best, bestTime := tileCandidates[0], time.Duration(1<<62)
		for _, bs := range tileCandidates {
			for i := range c.Data {
				c.Data[i] = 0
			}
			start := time.Now()
			mulRowsInto(c, a, b, 0, probeN, bs)
			if d := time.Since(start); d < bestTime {
				best, bestTime = bs, d
			}
		}
		tileSize = best
	})
	return tileSize
}

// Tiled computes C = A·B with the cache-blocked kernel at the autotuned
// tile size. Inputs smaller than one tile in every dimension fall back to
// the naive reference kernel — at that scale the whole problem is
// cache-resident and the reference loop is both correct and fastest.
func Tiled(a, b *Matrix) (*Matrix, error) {
	if err := checkMul(a, b); err != nil {
		return nil, err
	}
	bs := AutotuneTile()
	if a.Rows <= bs && a.Cols <= bs && b.Cols <= bs {
		return Naive(a, b)
	}
	c := New(a.Rows, b.Cols)
	mulRowsInto(c, a, b, 0, a.Rows, bs)
	return c, nil
}

// ParallelTiled computes C = A·B splitting row bands across `workers`
// goroutines, each band running the tiled kernel at the autotuned tile
// size.
func ParallelTiled(a, b *Matrix, workers int) (*Matrix, error) {
	if err := checkMul(a, b); err != nil {
		return nil, err
	}
	if workers <= 0 {
		return nil, errors.New("matmul: need at least one worker")
	}
	if workers > a.Rows {
		workers = a.Rows
	}
	bs := AutotuneTile()
	c := New(a.Rows, b.Cols)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * a.Rows / workers
		hi := (w + 1) * a.Rows / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			mulRowsInto(c, a, b, lo, hi, bs)
		}(lo, hi)
	}
	wg.Wait()
	return c, nil
}

// mulRowsInto accumulates rows [rowLo, rowHi) of A·B into the matching
// rows of c, blocking the k and j loops into bs-sided tiles so the active
// B panel stays cache-resident while a row strip of A streams through.
func mulRowsInto(c, a, b *Matrix, rowLo, rowHi, bs int) {
	for kk := 0; kk < a.Cols; kk += bs {
		kMax := min(kk+bs, a.Cols)
		for jj := 0; jj < b.Cols; jj += bs {
			jMax := min(jj+bs, b.Cols)
			for i := rowLo; i < rowHi; i++ {
				aRow := a.Data[i*a.Cols:]
				cRow := c.Data[i*c.Cols:]
				for k := kk; k < kMax; k++ {
					aik := aRow[k]
					if aik == 0 {
						continue
					}
					bRow := b.Data[k*b.Cols:]
					for j := jj; j < jMax; j++ {
						cRow[j] += aik * bRow[j]
					}
				}
			}
		}
	}
}

// OuterInto fills the [rowLo,rowHi)×[colLo,colHi) rectangle of c with the
// outer product a̅ᵀ×b̅, tiling the column range so the touched b̅ slice and
// output rows stream tile by tile. It is the kernel the plan executors
// (internal/core, internal/runtime) run on each worker's assigned
// sub-domain; bounds are the caller's responsibility, like a slice
// expression. The work performed is (rowHi-rowLo)·(colHi-colLo) cell
// updates on (rowHi-rowLo)+(colHi-colLo) input elements — the non-linear
// ratio the paper's communication analysis is about.
func OuterInto(c *Matrix, a, b []float64, rowLo, rowHi, colLo, colHi int) {
	bs := AutotuneTile()
	for jj := colLo; jj < colHi; jj += bs {
		jMax := min(jj+bs, colHi)
		bTile := b[jj:jMax]
		for i := rowLo; i < rowHi; i++ {
			av := a[i]
			cRow := c.Data[i*c.Cols+jj : i*c.Cols+jMax]
			for j, bv := range bTile {
				cRow[j] = av * bv
			}
		}
	}
}
