package service

import (
	"context"
	"errors"
	"testing"
	"time"

	nrt "nlfl/internal/runtime"
)

// slowConfig makes jobs take long enough to pile up deterministically.
func slowConfig() Config {
	return Config{
		Speeds:        []float64{1, 1},
		WorkPerSecond: 1e3, // a 64² job is ~2 s of fleet work
		Policy:        PolicyInterleaved,
	}
}

func TestAdmissionQueueFull(t *testing.T) {
	cfg := slowConfig()
	cfg.MaxQueue = 2
	cfg.TenantQuota = 2
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	h1 := mustSubmit(t, f, JobSpec{Tenant: "a", N: 64})
	h2 := mustSubmit(t, f, JobSpec{Tenant: "b", N: 64})
	if _, err := f.Submit(JobSpec{Tenant: "c", N: 64}); !errors.Is(err, ErrAdmissionRejected) {
		t.Fatalf("overfull submit: %v, want ErrAdmissionRejected", err)
	}
	acc := f.Accounting()
	if acc.Rejected != 1 || acc.Submitted != 3 {
		t.Fatalf("accounting after shed: %+v", acc)
	}
	h1.Cancel()
	h2.Cancel()
}

func TestAdmissionTenantQuota(t *testing.T) {
	cfg := slowConfig()
	cfg.MaxQueue = 8
	cfg.TenantQuota = 1
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	h := mustSubmit(t, f, JobSpec{Tenant: "flood", N: 64})
	if _, err := f.Submit(JobSpec{Tenant: "flood", N: 64}); !errors.Is(err, ErrAdmissionRejected) {
		t.Fatalf("over-quota submit: %v, want ErrAdmissionRejected", err)
	}
	// The flood tenant's quota does not block anyone else.
	h2 := mustSubmit(t, f, JobSpec{Tenant: "quiet", N: 64})
	acc := f.Accounting()
	for _, ta := range acc.Tenants {
		switch ta.Tenant {
		case "flood":
			if ta.Rejected != 1 || ta.Admitted != 1 {
				t.Errorf("flood account: %+v", ta)
			}
		case "quiet":
			if ta.Rejected != 0 || ta.Admitted != 1 {
				t.Errorf("quiet account: %+v", ta)
			}
		}
	}
	h.Cancel()
	h2.Cancel()
}

func TestJobDeadline(t *testing.T) {
	f, err := New(slowConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	start := time.Now()
	h := mustSubmit(t, f, JobSpec{Tenant: "d", N: 64, Deadline: 50 * time.Millisecond})
	rep, err := h.Wait(context.Background())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline job: %v, want DeadlineExceeded", err)
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("deadline enforcement took %v", took)
	}
	if rep == nil || !rep.Failed {
		t.Fatalf("deadline report: %+v", rep)
	}
	// The fleet still serves new work afterwards.
	fast := mustSubmit(t, f, JobSpec{Tenant: "d", N: 8})
	if _, err := fast.Wait(context.Background()); err != nil {
		t.Fatalf("post-deadline job: %v", err)
	}
	acc := f.Accounting()
	if acc.Cancelled != 1 || acc.Completed != 1 {
		t.Fatalf("accounting: %+v", acc)
	}
}

func TestCancelReleasesPromptly(t *testing.T) {
	f, err := New(slowConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	h := mustSubmit(t, f, JobSpec{Tenant: "c", N: 64})
	time.Sleep(10 * time.Millisecond) // let it start
	start := time.Now()
	h.Cancel()
	rep, err := h.Wait(context.Background())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled job: %v, want context.Canceled", err)
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("cancellation took %v", took)
	}
	if rep == nil || !rep.Failed {
		t.Fatalf("cancel report: %+v", rep)
	}
	select {
	case <-h.Done():
	default:
		t.Fatal("Done channel not closed after cancel")
	}
	// Cancel is idempotent.
	h.Cancel()
	// The pool is free again: a small job completes quickly.
	fast := mustSubmit(t, f, JobSpec{Tenant: "c", N: 8})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := fast.Wait(ctx); err != nil {
		t.Fatalf("post-cancel job: %v", err)
	}
}

func TestDrainAndClose(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var handles []*JobHandle
	for i := 0; i < 4; i++ {
		handles = append(handles, mustSubmit(t, f, JobSpec{Tenant: "drain", N: 48, Seed: int64(i)}))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := f.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	// Draining fleets reject new work but finished the old.
	if _, err := f.Submit(JobSpec{Tenant: "late", N: 16}); !errors.Is(err, ErrAdmissionRejected) {
		t.Fatalf("submit while drained: %v", err)
	}
	for _, h := range handles {
		checkJob(t, waitOK(t, h))
	}
	f.Close()
	f.Close() // idempotent
	if _, err := f.Submit(JobSpec{Tenant: "late", N: 16}); !errors.Is(err, ErrAdmissionRejected) {
		t.Fatalf("submit after close: %v", err)
	}
}

func TestCloseFailsInFlightJobs(t *testing.T) {
	f, err := New(slowConfig())
	if err != nil {
		t.Fatal(err)
	}
	h := mustSubmit(t, f, JobSpec{Tenant: "x", N: 64})
	time.Sleep(5 * time.Millisecond)
	f.Close()
	_, err = h.Wait(context.Background())
	if err == nil {
		t.Fatal("Wait after Close: want an error")
	}
	if !errors.Is(err, ErrFleetClosed) && !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait after Close: %v", err)
	}
}

// rejectReason unwraps an admission rejection's typed reason.
func rejectReason(t *testing.T, err error) RejectReason {
	t.Helper()
	if !errors.Is(err, ErrAdmissionRejected) {
		t.Fatalf("not an admission rejection: %v", err)
	}
	var ae *AdmissionError
	if !errors.As(err, &ae) {
		t.Fatalf("rejection without *AdmissionError: %v", err)
	}
	if ae.Detail == "" {
		t.Fatalf("rejection with empty detail: %+v", ae)
	}
	return ae.Reason
}

// TestAdmissionRejectReasons pins the typed reason on every rejection
// path — the regression test for `nlfl serve` 429s that previously
// could not say why.
func TestAdmissionRejectReasons(t *testing.T) {
	cfg := slowConfig()
	cfg.MaxQueue = 2
	cfg.TenantQuota = 1
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	h1 := mustSubmit(t, f, JobSpec{Tenant: "a", N: 64})
	_, err = f.Submit(JobSpec{Tenant: "a", N: 64})
	if got := rejectReason(t, err); got != RejectTenantQuota {
		t.Errorf("over-quota reason %q, want %q", got, RejectTenantQuota)
	}
	h2 := mustSubmit(t, f, JobSpec{Tenant: "b", N: 64})
	_, err = f.Submit(JobSpec{Tenant: "c", N: 64})
	if got := rejectReason(t, err); got != RejectQueueFull {
		t.Errorf("queue-full reason %q, want %q", got, RejectQueueFull)
	}
	h1.Cancel()
	h2.Cancel()
	h1.Wait(context.Background())
	h2.Wait(context.Background())
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f.Drain(drainCtx); err != nil {
		t.Fatalf("Drain over an idle fleet: %v", err)
	}
	_, err = f.Submit(JobSpec{Tenant: "d", N: 64})
	if got := rejectReason(t, err); got != RejectDraining {
		t.Errorf("draining reason %q, want %q", got, RejectDraining)
	}
	f.Close()
	_, err = f.Submit(JobSpec{Tenant: "e", N: 64})
	if got := rejectReason(t, err); got != RejectFleetClosed {
		t.Errorf("closed reason %q, want %q", got, RejectFleetClosed)
	}
}

// autoscaleConfig is the calibrated envelope the service sweep uses:
// fleet {1,2,3,4} at 3e4 cells/s per unit speed behind a 2.5e4-elems/s
// link, where the capacity model's knee for n∈{48,64,96} is 3 of 4.
func autoscaleConfig(theta float64) Config {
	return Config{
		Speeds:         []float64{1, 2, 3, 4},
		WorkPerSecond:  3e4,
		Link:           nrt.Link{ElemsPerSecond: 2.5e4},
		Policy:         PolicySRPT,
		AutoscaleTheta: theta,
		VerifyEvery:    997,
	}
}

// TestAutoscaleCapsSliceAtKnee: with AutoscaleTheta set, a job's slice
// stops at the capacity model's knee even though the static admission
// rule would hand it the whole fleet; with autoscaling off the same job
// gets all four workers.
func TestAutoscaleCapsSliceAtKnee(t *testing.T) {
	for _, tc := range []struct {
		theta       float64
		wantWorkers int
		wantAuto    bool
	}{
		{0.05, 3, true},
		{0, 4, false},
	} {
		f, err := New(autoscaleConfig(tc.theta))
		if err != nil {
			t.Fatal(err)
		}
		h := mustSubmit(t, f, JobSpec{Tenant: "auto", N: 64, Strategy: "het"})
		rep := waitOK(t, h)
		if len(rep.Workers) != tc.wantWorkers {
			t.Errorf("theta %v: slice %v, want %d workers", tc.theta, rep.Workers, tc.wantWorkers)
		}
		if rep.Autoscaled != tc.wantAuto {
			t.Errorf("theta %v: Autoscaled=%v, want %v", tc.theta, rep.Autoscaled, tc.wantAuto)
		}
		if tc.wantAuto && rep.PredictedMakespan <= 0 {
			t.Errorf("theta %v: no predicted makespan on an autoscaled job", tc.theta)
		}
		f.Close()
	}
}

// TestAutoscaleDeadlineReject: when the knee-sized slice cannot meet
// the job's deadline, the capacity model sheds the job at the door with
// the amdahl-cap reason instead of admitting it to fail.
func TestAutoscaleDeadlineReject(t *testing.T) {
	f, err := New(autoscaleConfig(0.05))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// A 96² job takes ≥ 30 ms on this fleet; a 1 ms deadline is hopeless
	// at any slice size, so the model rejects rather than admits.
	_, err = f.Submit(JobSpec{Tenant: "hopeless", N: 96, Deadline: time.Millisecond})
	if got := rejectReason(t, err); got != RejectAmdahlCap {
		t.Errorf("hopeless-deadline reason %q, want %q", got, RejectAmdahlCap)
	}
	// A generous deadline sails through and completes in time.
	h := mustSubmit(t, f, JobSpec{Tenant: "fine", N: 96, Deadline: 30 * time.Second})
	checkJob(t, waitOK(t, h))
	acc := f.Accounting()
	if acc.Rejected != 1 || acc.Completed != 1 {
		t.Fatalf("accounting: %+v", acc)
	}
}

func TestDrainDeadlineFailsStragglers(t *testing.T) {
	f, err := New(slowConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	h := mustSubmit(t, f, JobSpec{Tenant: "x", N: 64})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := f.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain under deadline: %v", err)
	}
	if _, err := h.Wait(context.Background()); !errors.Is(err, ErrFleetClosed) {
		t.Fatalf("straggler after drain deadline: %v", err)
	}
}
