package core

import (
	"fmt"

	"nlfl/internal/dlt"
	"nlfl/internal/platform"
	"nlfl/internal/samplesort"
)

// LinearPlan is the distribution plan for a genuinely divisible (linear)
// load: the classical DLT allocation.
type LinearPlan struct {
	// Fractions[i] is worker i's share αᵢ.
	Fractions []float64
	// Makespan is the closed-form completion time.
	Makespan float64
	// EqualSplitMakespan is the naive baseline for comparison.
	EqualSplitMakespan float64
}

// Speedup returns the gain of the optimal allocation over the equal
// split.
func (p LinearPlan) Speedup() float64 {
	if p.Makespan == 0 {
		return 0
	}
	return p.EqualSplitMakespan / p.Makespan
}

// PlanLinear returns the optimal single-round DLT allocation of a linear
// load of n units under the paper's parallel-links model — the
// Divisible-verdict branch of the planner.
func PlanLinear(pl *platform.Platform, n float64) (LinearPlan, error) {
	opt, err := dlt.OptimalParallel(pl, n)
	if err != nil {
		return LinearPlan{}, err
	}
	eq := dlt.EqualSplit(pl, n)
	return LinearPlan{
		Fractions:          opt.Fractions,
		Makespan:           opt.Makespan,
		EqualSplitMakespan: eq.Makespan,
	}, nil
}

// SortPlan is the distribution plan for an N·log N load: sample-sort
// pre-processing plus speed-proportional (or log-balanced) bucket shares.
type SortPlan struct {
	// Shares[i] is the fraction of keys bucket i should receive.
	Shares []float64
	// Oversampling is the splitter oversampling ratio s = ⌈log²N⌉.
	Oversampling int
	// NonDivisibleFraction is log p / log N.
	NonDivisibleFraction float64
	// Balanced reports whether the shares correct for the log factor.
	Balanced bool
}

// PlanSort returns the bucket plan for sorting n keys on the platform —
// the AlmostDivisible-verdict branch of the planner. With balanced=true
// the shares equalize wᵢ·nᵢ·log nᵢ exactly (the SortHeterogeneousBalanced
// refinement); otherwise they are the paper's speed-proportional shares.
func PlanSort(pl *platform.Platform, n int, balanced bool) (SortPlan, error) {
	if n < 1 {
		return SortPlan{}, fmt.Errorf("core: invalid key count %d", n)
	}
	var shares []float64
	if balanced {
		shares = samplesort.BalancedShares(pl.Speeds(), n)
	} else {
		shares = pl.NormalizedSpeeds()
	}
	return SortPlan{
		Shares:               shares,
		Oversampling:         samplesort.DefaultOversampling(n),
		NonDivisibleFraction: samplesort.NonDivisibleFraction(n, pl.P()),
		Balanced:             balanced,
	}, nil
}
