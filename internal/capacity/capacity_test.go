package capacity

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
)

// benchModel is the BENCH_capacity.json envelope: a bimodal-ish 8-worker
// fleet on a constrained link, where the knee is interior.
func benchModel() Model {
	return Model{
		Alpha:         2,
		N:             96,
		Speeds:        []float64{4, 4, 3, 3, 2, 2, 1, 1},
		WorkPerSecond: 3e4,
		Bandwidth:     2.5e4,
	}
}

func TestValidateRejectsBadInputs(t *testing.T) {
	good := benchModel()
	cases := []struct {
		name   string
		mutate func(*Model)
		want   string
	}{
		{"alpha", func(m *Model) { m.Alpha = 0.5 }, "alpha"},
		{"nan-alpha", func(m *Model) { m.Alpha = math.NaN() }, "alpha"},
		{"n", func(m *Model) { m.N = 0 }, "size"},
		{"no-speeds", func(m *Model) { m.Speeds = nil }, "speed"},
		{"bad-speed", func(m *Model) { m.Speeds = []float64{1, -2} }, "speed"},
		{"rate", func(m *Model) { m.WorkPerSecond = 0 }, "rate"},
		{"bandwidth", func(m *Model) { m.Bandwidth = -1 }, "bandwidth"},
	}
	for _, tc := range cases {
		m := good
		tc.mutate(&m)
		err := m.Validate()
		if err == nil {
			t.Fatalf("%s: Validate accepted %+v", tc.name, m)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good model rejected: %v", err)
	}
}

func TestPredictSliceClosedForms(t *testing.T) {
	m := benchModel()
	// p=1: a single worker owns the whole N×N domain, so it receives both
	// input vectors (2N elements) and computes N² cells at 4·R cells/s.
	p1, err := m.PredictSlice(1)
	if err != nil {
		t.Fatal(err)
	}
	wantVol := 2.0 * 96
	if math.Abs(p1.CommVolume-wantVol) > 1e-9 {
		t.Fatalf("p=1 volume %v, want %v", p1.CommVolume, wantVol)
	}
	wantComm := wantVol / m.Bandwidth
	wantComp := 96.0 * 96 / (m.WorkPerSecond * 4)
	if math.Abs(p1.Makespan-(wantComm+wantComp)) > 1e-12 {
		t.Fatalf("p=1 makespan %v, want %v", p1.Makespan, wantComm+wantComp)
	}
	if p1.Speedup != 1 {
		t.Fatalf("p=1 speedup %v, want 1", p1.Speedup)
	}
	if p1.UnprocessedIfChunked != 0 {
		t.Fatalf("p=1 unprocessed %v, want 0", p1.UnprocessedIfChunked)
	}

	// p=2 picks the two speed-4 workers: two half-domain rectangles, each
	// half-perimeter 1.5, so V = 2·1.5·N = 3N, and compute halves.
	p2, err := m.PredictSlice(2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p2.CommVolume-3*96) > 1e-9 {
		t.Fatalf("p=2 volume %v, want %v", p2.CommVolume, 3*96)
	}
	wantT2 := 3*96/m.Bandwidth + 96.0*96/(m.WorkPerSecond*8)
	if math.Abs(p2.Makespan-wantT2) > 1e-12 {
		t.Fatalf("p=2 makespan %v, want %v", p2.Makespan, wantT2)
	}
	if math.Abs(p2.Speedup-p1.Makespan/wantT2) > 1e-12 {
		t.Fatalf("p=2 speedup %v, want %v", p2.Speedup, p1.Makespan/wantT2)
	}
	// Chunking two workers on an α=2 load would leave half the work undone.
	if math.Abs(p2.UnprocessedIfChunked-0.5) > 1e-12 {
		t.Fatalf("p=2 unprocessed-if-chunked %v, want 0.5", p2.UnprocessedIfChunked)
	}
}

func TestRecommendKneeOnBenchEnvelope(t *testing.T) {
	rec, err := benchModel().Recommend(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Knee != 4 {
		t.Fatalf("knee %d, want 4 (curve: %+v)", rec.Knee, rec.Curve)
	}
	if rec.Best < rec.Knee {
		t.Fatalf("best %d < knee %d", rec.Best, rec.Knee)
	}
	at := rec.AtKnee()
	if at.Workers != 4 {
		t.Fatalf("AtKnee workers %d", at.Workers)
	}
	if at.Speedup < 2.0 || at.Speedup > 2.5 {
		t.Fatalf("knee speedup %v outside the calibrated [2.0, 2.5]", at.Speedup)
	}
	// Every step up to the knee clears θ; the next step does not.
	for p := 2; p <= rec.Knee; p++ {
		gain := rec.Curve[p-1].Speedup/rec.Curve[p-2].Speedup - 1
		if gain < rec.Theta {
			t.Fatalf("step %d→%d gain %v below theta inside the knee", p-1, p, gain)
		}
	}
	gain := rec.Curve[rec.Knee].Speedup/rec.Curve[rec.Knee-1].Speedup - 1
	if gain >= rec.Theta {
		t.Fatalf("step past the knee gains %v ≥ theta %v", gain, rec.Theta)
	}
}

func TestRecommendRejectsBadTheta(t *testing.T) {
	for _, theta := range []float64{0, -0.1, math.NaN(), math.Inf(1)} {
		if _, err := benchModel().Recommend(theta); err == nil {
			t.Fatalf("Recommend accepted theta %v", theta)
		}
	}
}

func TestUnconstrainedLinkHasZeroCommTime(t *testing.T) {
	m := benchModel()
	m.Bandwidth = 0
	curve, err := m.Curve()
	if err != nil {
		t.Fatal(err)
	}
	for _, pred := range curve {
		if pred.CommTime != 0 {
			t.Fatalf("p=%d comm time %v with unconstrained link", pred.Workers, pred.CommTime)
		}
		if pred.Makespan != pred.ComputeTime {
			t.Fatalf("p=%d makespan %v ≠ compute %v", pred.Workers, pred.Makespan, pred.ComputeTime)
		}
	}
	// Without a link cost, every extra worker helps: the raw curve itself
	// is strictly increasing and the knee lands at the fleet edge.
	for p := 1; p < len(curve); p++ {
		if curve[p].Speedup <= curve[p-1].Speedup {
			t.Fatalf("unconstrained speedup not increasing at p=%d", p+1)
		}
	}
}

func TestSimulatorAgreesWithinSnappingTolerance(t *testing.T) {
	m := benchModel()
	for p := 1; p <= len(m.Speeds); p++ {
		sim, err := m.SimulateMakespan(p)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if err := m.CheckObservation(p, sim, 0.05); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestMeasuredRuntimeAgreesWithinNoiseTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	m := benchModel()
	for _, p := range []int{1, 4, 8} {
		// Best-of-2: wall-clock noise (timer warm-up in a fresh process,
		// scheduler jitter) is strictly additive over the model, so the
		// minimum is the right estimator of the modeled time.
		meas := math.Inf(1)
		for rep := 0; rep < 2; rep++ {
			one, err := m.MeasureMakespan(context.Background(), p, 42)
			if err != nil {
				t.Fatalf("p=%d: %v", p, err)
			}
			meas = math.Min(meas, one)
		}
		if err := m.CheckObservation(p, meas, 0.25); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestCheckObservationRejectsGarbage(t *testing.T) {
	m := benchModel()
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if err := m.CheckObservation(2, bad, 0.1); err == nil {
			t.Fatalf("CheckObservation accepted observed=%v", bad)
		}
	}
	pred, err := m.PredictSlice(3)
	if err != nil {
		t.Fatal(err)
	}
	err = m.CheckObservation(3, pred.Makespan*2, 0.1)
	if !errors.Is(err, ErrModelMismatch) {
		t.Fatalf("2× the prediction passed the 10%% gate: %v", err)
	}
	if err := m.CheckObservation(3, pred.Makespan*1.05, 0.1); err != nil {
		t.Fatalf("5%% off failed the 10%% gate: %v", err)
	}
}

func TestMisSpecifiedAlphaFailsValidation(t *testing.T) {
	// The real system is the α=2 outer product. A model that assumes α=3
	// predicts N³ work and an N^1.5-sided domain — its makespans are off
	// by orders of magnitude, and the validation gate must say so.
	honest := benchModel()
	lying := honest
	lying.Alpha = 3
	for _, p := range []int{1, 4, 8} {
		sim, err := lying.SimulateMakespan(p)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		err = lying.CheckObservation(p, sim, 0.25)
		if !errors.Is(err, ErrModelMismatch) {
			t.Fatalf("p=%d: mis-specified α=3 passed validation (err=%v)", p, err)
		}
		// Sanity: the honest model passes on the same observation, proving
		// the failure is the α, not the harness.
		if err := honest.CheckObservation(p, sim, 0.05); err != nil {
			t.Fatalf("p=%d: honest model rejected: %v", p, err)
		}
	}
}

func TestPredictSliceRange(t *testing.T) {
	m := benchModel()
	for _, p := range []int{0, -1, 9} {
		if _, err := m.PredictSlice(p); err == nil {
			t.Fatalf("PredictSlice accepted p=%d", p)
		}
		if _, err := m.SimulateMakespan(p); err == nil {
			t.Fatalf("SimulateMakespan accepted p=%d", p)
		}
	}
}
