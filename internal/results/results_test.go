package results

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type payload struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
	Nested struct {
		X float64 `json:"x"`
	} `json:"nested"`
}

func samplePayload() payload {
	p := payload{Name: "demo", Values: []float64{1, 2, 3}}
	p.Nested.X = 0.5
	return p
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.json")
	rec := Record{
		Experiment: "fig4b",
		Params:     map[string]float64{"seed": 42, "trials": 100},
		Data:       samplePayload(),
	}
	if err := Save(path, rec); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Experiment != "fig4b" || got.Params["seed"] != 42 {
		t.Errorf("loaded %+v", got)
	}
	if diffs := Compare(rec, got, 1e-12); len(diffs) != 0 {
		t.Errorf("round trip not identical: %v", diffs)
	}
}

func TestSaveValidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.json")
	if err := Save(path, Record{}); err == nil {
		t.Error("unnamed record should fail")
	}
	if err := Save(filepath.Join(t.TempDir(), "missing", "x.json"),
		Record{Experiment: "x"}); err == nil {
		t.Error("unwritable path should fail")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file should fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Error("corrupt file should fail")
	}
}

func TestCompareTolerance(t *testing.T) {
	a := Record{Experiment: "e", Data: map[string]float64{"v": 100}}
	b := Record{Experiment: "e", Data: map[string]float64{"v": 100.4}}
	if diffs := Compare(a, b, 0.01); len(diffs) != 0 {
		t.Errorf("0.4%% difference within 1%% tolerance flagged: %v", diffs)
	}
	if diffs := Compare(a, b, 0.001); len(diffs) != 1 {
		t.Errorf("0.4%% difference above 0.1%% tolerance not flagged: %v", diffs)
	}
}

func TestCompareStructural(t *testing.T) {
	a := Record{Experiment: "e", Data: map[string]interface{}{
		"rows": []interface{}{1.0, 2.0}, "label": "x", "only-a": true,
	}}
	b := Record{Experiment: "f", Data: map[string]interface{}{
		"rows": []interface{}{1.0, 2.0, 3.0}, "label": "y",
	}}
	diffs := Compare(a, b, 0)
	joined := ""
	for _, d := range diffs {
		joined += d.String() + "\n"
	}
	for _, want := range []string{"experiment", "data.rows", "data.label", "data.only-a"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing diff for %s in:\n%s", want, joined)
		}
	}
}

func TestCompareNaNEqual(t *testing.T) {
	if !floatsClose(math.NaN(), math.NaN(), 0) {
		t.Error("NaN should compare equal to NaN in regression diffs")
	}
	if floatsClose(1, math.NaN(), 1) {
		t.Error("NaN vs number must differ")
	}
}

func TestCompareTypeMismatch(t *testing.T) {
	a := Record{Experiment: "e", Data: map[string]interface{}{"v": 1.0}}
	b := Record{Experiment: "e", Data: map[string]interface{}{"v": "one"}}
	if diffs := Compare(a, b, 0); len(diffs) != 1 {
		t.Errorf("type mismatch not flagged: %v", diffs)
	}
	c := Record{Experiment: "e", Data: []interface{}{1.0}}
	if diffs := Compare(a, c, 0); len(diffs) == 0 {
		t.Error("map vs slice not flagged")
	}
}

func TestDiffRendering(t *testing.T) {
	d := Diff{Path: "data.x", A: "1", B: "2"}
	if d.String() != "data.x: 1 != 2" {
		t.Errorf("diff rendering: %s", d)
	}
}
