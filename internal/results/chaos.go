package results

// BenchChaosSchema identifies the BENCH_chaos.json payload, bumped on
// breaking field changes so consumers (CI's chaos-smoke gate) can reject
// files they do not understand.
const BenchChaosSchema = "nlfl/bench-chaos/v1"

// ChaosBenchEntry is one measured strategy execution under an injected
// fault scenario. The volume ledger is the deterministic half of the
// record: PlanVolume is the original plan's geometry, ReplannedVolume
// adds the survivor re-plan's extra traffic, and the committed volume
// must match it exactly — the run shipped precisely what the degraded
// plan called for, no more, no less. Wall-clock fields and the recovery
// counters of randomized scenarios vary run to run (see EXPERIMENTS.md).
type ChaosBenchEntry struct {
	// Class names the injected fault family: "crash", "crash-t0",
	// "straggler" or "flaky-link".
	Class string `json:"class"`
	// Platform names the speed profile, Speeds lists it.
	Platform string    `json:"platform"`
	Speeds   []float64 `json:"speeds"`
	// Strategy is "hom", "hom/k" or "het"; N the vector length.
	Strategy string `json:"strategy"`
	N        int    `json:"n"`
	// Workers is the pool size, Chunks the original plan's chunk count.
	Workers int `json:"workers"`
	Chunks  int `json:"chunks"`
	// PlanVolume is the executed plan's geometric communication volume
	// Σ(wᵢ+hᵢ); ReplannedVolume adds the extra traffic survivor re-plans
	// introduced (equal to PlanVolume when nothing was reclaimed).
	PlanVolume      float64 `json:"planVolume"`
	ReplannedVolume float64 `json:"replannedVolume"`
	// CommittedVolume is the input data of every chunk that won its
	// commit; MeasuredVolume every element actually shipped (committed
	// plus WastedData: dropped transfers, losing speculative copies, and
	// work lost to crashes).
	CommittedVolume float64 `json:"committedVolume"`
	MeasuredVolume  float64 `json:"measuredVolume"`
	WastedData      float64 `json:"wastedData"`
	// Makespan is the measured wall-clock seconds of the degraded run.
	Makespan float64 `json:"makespan"`
	// RetriedChunks, SpeculativeWins, DegradedWorkers and ReclaimedCells
	// are the recovery counters — evidence the scenario actually bit.
	RetriedChunks   int     `json:"retriedChunks"`
	SpeculativeWins int     `json:"speculativeWins"`
	DegradedWorkers int     `json:"degradedWorkers"`
	ReclaimedCells  float64 `json:"reclaimedCells"`
	// Violations counts invariant-oracle findings, the exactly-once
	// commit check included; 0 in any valid file.
	Violations int `json:"violations"`
}

// ChaosBenchFile is the BENCH_chaos.json payload: the robustness sweep
// showing the measured runtime surviving one scenario per fault class
// with a clean exactly-once ledger.
type ChaosBenchFile struct {
	Schema string `json:"schema"`
	Seed   int64  `json:"seed"`
	Quick  bool   `json:"quick"`
	// WorkPerSecond is the token-bucket rate scale of every run.
	WorkPerSecond float64           `json:"workPerSecond"`
	GoVersion     string            `json:"goVersion"`
	GOMAXPROCS    int               `json:"gomaxprocs"`
	Entries       []ChaosBenchEntry `json:"entries"`
}

// SaveBenchChaos writes the chaos sweep file as indented JSON.
func SaveBenchChaos(path string, f ChaosBenchFile) error {
	return saveJSON(path, f)
}

// LoadBenchChaos reads a chaos sweep file.
func LoadBenchChaos(path string) (ChaosBenchFile, error) {
	var f ChaosBenchFile
	err := loadJSON(path, &f)
	return f, err
}
