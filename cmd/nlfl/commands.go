package main

import (
	"fmt"
	"strconv"
	"strings"

	"nlfl/internal/core"
	"nlfl/internal/experiments"
	"nlfl/internal/mapreduce"
	"nlfl/internal/matmul"
	"nlfl/internal/outer"
	"nlfl/internal/partition"
	"nlfl/internal/platform"
	"nlfl/internal/results"
	"nlfl/internal/samplesort"
	"nlfl/internal/stats"
)

// runFig4 reproduces one panel of Figure 4.
func runFig4(args []string) error {
	fs := newFlagSet("fig4")
	dist := fs.String("dist", "uniform", "speed profile: homogeneous|uniform|lognormal|bimodal")
	trials := fs.Int("trials", 100, "random platforms per point (paper: 100)")
	seed := fs.Int64("seed", 42, "random seed")
	pmax := fs.Int("pmax", 100, "largest processor count")
	k := fs.Float64("k", 16, "speed factor for the bimodal profile")
	csv := fs.Bool("csv", false, "emit CSV instead of chart+table")
	logy := fs.Bool("log", false, "log-scale y axis for the chart")
	out := fs.String("out", "", "also save the points as a JSON result record")
	if err := fs.Parse(args); err != nil {
		return err
	}
	profile, err := platform.ParseProfile(*dist)
	if err != nil {
		return err
	}
	cfg := experiments.DefaultFig4Config(profile)
	cfg.Trials = *trials
	cfg.Seed = *seed
	cfg.BimodalK = *k
	cfg.Ps = nil
	for p := 10; p <= *pmax; p += 10 {
		cfg.Ps = append(cfg.Ps, p)
	}
	points, err := experiments.Fig4(cfg)
	if err != nil {
		return err
	}
	if *out != "" {
		rec := results.Record{
			Experiment: "fig4-" + profile.String(),
			Params: map[string]float64{
				"trials": float64(*trials), "seed": float64(*seed),
				"pmax": float64(*pmax), "bimodalK": *k,
			},
			Data: points,
		}
		if err := results.Save(*out, rec); err != nil {
			return err
		}
		fmt.Printf("saved %s\n", *out)
	}
	title := fmt.Sprintf("Figure 4 — %s computation speeds (%d trials/point)", profile, *trials)
	chart := experiments.Fig4Chart(points, title)
	chart.LogY = *logy
	if *csv {
		fmt.Print(chart.CSV())
		return nil
	}
	fmt.Print(chart.Render())
	fmt.Println()
	fmt.Print(experiments.Fig4Table(points).String())
	return nil
}

// runNonLinear reproduces the Section 2 fraction table.
func runNonLinear(args []string) error {
	fs := newFlagSet("nonlinear")
	n := fs.Float64("n", 1000, "load size N")
	alphas := fs.String("alphas", "1.5,2,3", "comma-separated cost exponents")
	ps := fs.String("ps", "2,4,10,32,100", "comma-separated platform sizes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	alphaList, err := parseFloats(*alphas)
	if err != nil {
		return err
	}
	pList, err := parseInts(*ps)
	if err != nil {
		return err
	}
	table, _, err := experiments.NonLinearTable(pList, alphaList, *n)
	if err != nil {
		return err
	}
	fmt.Println("Section 2 — fraction of the total work W = N^α left UNDONE by an")
	fmt.Println("optimal one-phase DLT distribution (closed form: 1 - 1/P^(α-1)):")
	fmt.Println()
	fmt.Print(table.String())
	fmt.Println("\nThe fraction tends to 1 as P grows for every α > 1 — there is no free lunch.")
	return nil
}

// runSort reproduces the Section 3 sorting experiments.
func runSort(args []string) error {
	fs := newFlagSet("sort")
	p := fs.Int("p", 8, "number of workers")
	seed := fs.Int64("seed", 7, "random seed")
	trials := fs.Int("trials", 30, "concentration-check trials")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows, err := experiments.SortScaling([]int{1 << 10, 1 << 14, 1 << 17, 1 << 20}, *p, *seed)
	if err != nil {
		return err
	}
	fmt.Println("Section 3 — sorting as an almost-divisible load:")
	fmt.Println()
	fmt.Print(experiments.SortScalingTable(rows, *p).String())
	res, err := samplesort.CheckConcentration(1<<16, *p, 0, *trials, *seed)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Printf("Theorem B.4 check (N=%d, p=%d, s=log²N=%d, %d trials):\n", res.N, res.P, res.S, res.Trials)
	fmt.Printf("  empirical P(max bucket > threshold) = %.3f (bound: %.3f)\n",
		res.EmpiricalFailureRate(), res.FailureBound)
	fmt.Printf("  mean max-bucket/(N/p) = %.4f (threshold ratio: %.4f)\n",
		res.MeanRatio, res.Threshold/(float64(res.N)/float64(res.P)))
	return nil
}

// runRho reproduces the Section 4.1.3 ρ analysis.
func runRho(args []string) error {
	fs := newFlagSet("rho")
	p := fs.Int("p", 20, "platform size (even: half slow, half fast)")
	ks := fs.String("ks", "1,4,16,64,100", "comma-separated speed factors")
	if err := fs.Parse(args); err != nil {
		return err
	}
	kList, err := parseFloats(*ks)
	if err != nil {
		return err
	}
	points, err := experiments.RhoSweep(kList, *p, 1000)
	if err != nil {
		return err
	}
	fmt.Println("Section 4.1.3 — ρ = Comm_hom/Comm_het on the half-slow/half-k×-fast platform:")
	fmt.Println()
	fmt.Print(experiments.RhoTable(points).String())
	return nil
}

// runPartition reproduces the E12 partitioner-quality sweep.
func runPartition(args []string) error {
	fs := newFlagSet("partition")
	trials := fs.Int("trials", 50, "trials per cell")
	seed := fs.Int64("seed", 11, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows, err := experiments.PartitionQuality([]int{10, 25, 50, 100}, *trials, *seed)
	if err != nil {
		return err
	}
	fmt.Println("Section 4.1.2 — PERI-SUM column-based partitioner quality Ĉ/LB")
	fmt.Println("(guarantee: ≤ 1 + (5/4)·LB, i.e. ratio ≤ 7/4; paper observes ≈1.02):")
	fmt.Println()
	fmt.Print(experiments.PartitionQualityTable(rows).String())
	return nil
}

// runOuter details the three strategies on one random platform.
func runOuter(args []string) error {
	fs := newFlagSet("outer")
	p := fs.Int("p", 20, "number of workers")
	n := fs.Float64("n", 1000, "vector length N")
	dist := fs.String("dist", "uniform", "speed profile")
	seed := fs.Int64("seed", 3, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	profile, err := platform.ParseProfile(*dist)
	if err != nil {
		return err
	}
	pl, err := platform.Generate(*p, profile.Distribution(16), stats.NewRNG(*seed))
	if err != nil {
		return err
	}
	fmt.Printf("platform: %v\n", pl)
	fmt.Printf("lower bound LB = 2N·Σ√xᵢ = %.4g\n\n", outer.LowerBound(pl, *n))
	hom := outer.Commhom(pl, *n)
	fmt.Println(hom.String())
	homk, err := outer.CommhomK(pl, *n, 0.01, 0)
	if err != nil {
		return err
	}
	fmt.Println(homk.String())
	het, err := outer.Commhet(pl, *n)
	if err != nil {
		return err
	}
	fmt.Println(het.String())
	plan, err := core.PlanOuterProduct(pl, *n)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(plan.String())
	return nil
}

// runMatMul runs a real verified product and the layout volume accounting.
func runMatMul(args []string) error {
	fs := newFlagSet("matmul")
	n := fs.Int("n", 96, "matrix dimension")
	seed := fs.Int64("seed", 5, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	a := matmul.Random(*n, *n, *seed)
	b := matmul.Random(*n, *n, *seed+1)
	ref, err := matmul.Naive(a, b)
	if err != nil {
		return err
	}
	op, err := matmul.OuterProduct(a, b)
	if err != nil {
		return err
	}
	fmt.Printf("outer-product algorithm == naive kernel: %v\n\n", ref.Equal(op, 1e-9))

	grid, err := matmul.NewBlockCyclic(*n, 2, 2, *n/8)
	if err != nil {
		return err
	}
	gridRep := matmul.CommVolume(grid)
	fmt.Printf("%-24s total=%.4g (closed form %.4g)\n", gridRep.Layout,
		gridRep.Total, matmul.GridCommClosedForm(2, 2, *n))

	speeds := []float64{1, 2, 4, 9}
	part, err := partition.PeriSum(speeds)
	if err != nil {
		return err
	}
	rect, err := matmul.NewRectLayout(*n, part)
	if err != nil {
		return err
	}
	rectRep := matmul.CommVolume(rect)
	fmt.Printf("%-24s total=%.4g (closed form %.4g)\n", rectRep.Layout,
		rectRep.Total, matmul.RectCommClosedForm(part, *n))
	fmt.Printf("\nspeed-weighted work imbalance: grid=%.3g rect=%.3g (speeds %v)\n",
		gridRep.Imbalance(speeds), rectRep.Imbalance(speeds), speeds)
	return nil
}

// runMapReduce compares distributions and runs the demo job.
func runMapReduce(args []string) error {
	fs := newFlagSet("mapreduce")
	n := fs.Int("n", 512, "matrix dimension for the closed-form menu")
	demo := fs.Int("demo", 12, "dimension of the real MapReduce product (n³ records!)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	table, err := experiments.MapReduceComparison(*n, []float64{1, 1, 5, 9}, 2, 2)
	if err != nil {
		return err
	}
	fmt.Printf("matmul data-distribution menu at n=%d (speeds 1,1,5,9):\n\n", *n)
	fmt.Print(table.String())

	a := matmul.Random(*demo, *demo, 1)
	b := matmul.Random(*demo, *demo, 2)
	got, ctr, err := mapreduce.RunMatMulPairs(a, b, 4, 4, true)
	if err != nil {
		return err
	}
	ref, err := matmul.Naive(a, b)
	if err != nil {
		return err
	}
	fmt.Printf("\nreal MapReduce product at n=%d: correct=%v\n  %s\n",
		*demo, ref.Equal(got, 1e-9), ctr)
	return nil
}

// runAnalyze prints the core divisibility verdict.
func runAnalyze(args []string) error {
	fs := newFlagSet("analyze")
	kind := fs.String("kind", "power", "workload kind: linear|loglinear|power")
	n := fs.Float64("n", 1e6, "input size N")
	alpha := fs.Float64("alpha", 2, "cost exponent (power only)")
	p := fs.Int("p", 100, "platform size")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var k core.WorkloadKind
	switch strings.ToLower(*kind) {
	case "linear":
		k = core.Linear
	case "loglinear", "sort":
		k = core.LogLinear
	case "power":
		k = core.Power
	default:
		return fmt.Errorf("unknown workload kind %q", *kind)
	}
	v, err := core.Analyze(core.Workload{Kind: k, N: *n, Alpha: *alpha}, *p)
	if err != nil {
		return err
	}
	fmt.Println(v.String())
	return nil
}

// runDemo smoke-runs every experiment with tiny settings.
func runDemo(args []string) error {
	fmt.Println("=== nonlinear ===")
	if err := runNonLinear([]string{"-ps", "2,10,100"}); err != nil {
		return err
	}
	fmt.Println("\n=== sort ===")
	if err := runSort([]string{"-trials", "5"}); err != nil {
		return err
	}
	fmt.Println("\n=== rho ===")
	if err := runRho(nil); err != nil {
		return err
	}
	fmt.Println("\n=== partition ===")
	if err := runPartition([]string{"-trials", "10"}); err != nil {
		return err
	}
	fmt.Println("\n=== outer ===")
	if err := runOuter([]string{"-p", "8"}); err != nil {
		return err
	}
	fmt.Println("\n=== matmul ===")
	if err := runMatMul([]string{"-n", "48"}); err != nil {
		return err
	}
	fmt.Println("\n=== mapreduce ===")
	if err := runMapReduce([]string{"-demo", "8"}); err != nil {
		return err
	}
	fmt.Println("\n=== fig2 ===")
	if err := runFig2([]string{"-p", "5", "-w", "40", "-h", "12"}); err != nil {
		return err
	}
	fmt.Println("\n=== affinity ===")
	if err := runAffinity([]string{"-p", "6", "-g", "20"}); err != nil {
		return err
	}
	fmt.Println("\n=== bottleneck ===")
	if err := runBottleneck([]string{"-p", "10"}); err != nil {
		return err
	}
	fmt.Println("\n=== mrdlt ===")
	if err := runMRDLT([]string{"-p", "6"}); err != nil {
		return err
	}
	fmt.Println("\n=== fig4 (reduced) ===")
	if err := runFig4([]string{"-trials", "10", "-pmax", "50"}); err != nil {
		return err
	}
	fmt.Println("\n=== analyze ===")
	return runAnalyze(nil)
}

// parseFloats parses "1,2.5,3".
func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad float %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseInts parses "1,2,3".
func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad int %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
