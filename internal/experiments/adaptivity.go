package experiments

import (
	"fmt"
	"math"

	"nlfl/internal/dessim"
	"nlfl/internal/dlt"
	"nlfl/internal/platform"
	"nlfl/internal/plot"
)

// AdaptivityRow is one slowdown level of the E16 experiment: the makespan
// of a static optimal DLT schedule versus a demand-driven pool when one
// worker's speed drops mid-run.
type AdaptivityRow struct {
	// Factor is the slowed worker's residual speed fraction (1 = healthy).
	Factor float64
	// Static is the static schedule's makespan; Demand the demand-driven
	// pool's; Clean the healthy-platform reference.
	Static, Demand, Clean float64
}

// Adaptivity quantifies the paper's Section 1.1 praise of MapReduce —
// "re-assign tasks that slow down the process" — against classical DLT's
// static allocation. A linear load of size n is scheduled on p
// homogeneous workers; at 30% of the nominal makespan, worker 0's speed
// drops to `factor`. The static single-round optimal cannot react (its
// slowed worker keeps its whole chunk); the demand-driven pool of
// `blocks` identical tasks reroutes automatically.
func Adaptivity(p int, n float64, blocks int, factors []float64) ([]AdaptivityRow, error) {
	pl, err := platform.Homogeneous(p, 1, 1)
	if err != nil {
		return nil, err
	}
	alloc, err := dlt.OptimalParallel(pl, n)
	if err != nil {
		return nil, err
	}
	chunks := dlt.Chunks(alloc, n)
	tasks := make([]dessim.Task, blocks)
	for i := range tasks {
		tasks[i] = dessim.Task{Data: n / float64(blocks), Work: n / float64(blocks)}
	}
	clean, err := dessim.RunSingleRound(pl, chunks, dessim.ParallelLinks)
	if err != nil {
		return nil, err
	}
	slowAt := 0.3 * clean.Makespan

	rows := make([]AdaptivityRow, 0, len(factors))
	for _, f := range factors {
		if f <= 0 || f > 1 || math.IsNaN(f) {
			return nil, fmt.Errorf("experiments: invalid slowdown factor %v", f)
		}
		healthy := make([]float64, p)
		slowed := make([]float64, p)
		for i := range healthy {
			healthy[i] = 1
			slowed[i] = 1
		}
		slowed[0] = f
		epochs := []dessim.Epoch{
			{Until: slowAt, Factor: healthy},
			{Until: math.Inf(1), Factor: slowed},
		}
		static, err := dessim.RunSingleRoundVarying(pl, chunks, epochs)
		if err != nil {
			return nil, err
		}
		demand, err := dessim.RunDemandDrivenVarying(pl, tasks, epochs)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AdaptivityRow{
			Factor: f,
			Static: static.Makespan,
			Demand: demand.Makespan,
			Clean:  clean.Makespan,
		})
	}
	return rows, nil
}

// AdaptivityTable renders the sweep.
func AdaptivityTable(rows []AdaptivityRow) *plot.Table {
	t := plot.NewTable("residual speed", "static DLT", "demand-driven", "healthy ref")
	for _, r := range rows {
		t.AddRowf(r.Factor, r.Static, r.Demand, r.Clean)
	}
	return t
}
