package faults

import (
	"encoding/json"
	"math"
	"testing"

	"nlfl/internal/dessim"
	"nlfl/internal/platform"
)

func testPlatform(t *testing.T, speeds ...float64) *platform.Platform {
	t.Helper()
	ws := make([]platform.Worker, len(speeds))
	for i, s := range speeds {
		ws[i] = platform.Worker{Speed: s, Bandwidth: 1}
	}
	p, err := platform.New(ws)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func uniformTasks(n int, data, work float64) []dessim.Task {
	tasks := make([]dessim.Task, n)
	for i := range tasks {
		tasks[i] = dessim.Task{Data: data, Work: work}
	}
	return tasks
}

func maxOf(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		m = math.Max(m, x)
	}
	return m
}

// With no faults, the resilient executor must reproduce the plain
// demand-driven run exactly: same makespan, no waste of any kind.
func TestResilientFaultFreeMatchesDemandDriven(t *testing.T) {
	p := testPlatform(t, 3, 2, 1)
	tasks := uniformTasks(12, 1, 2)
	rep, err := RunResilientDemandDriven(p, tasks, Scenario{}, ResilientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tl, err := dessim.RunDemandDriven(p, tasks, dessim.ParallelLinks)
	if err != nil {
		t.Fatal(err)
	}
	want := maxOf(tl.FinishTimes())
	if math.Abs(rep.Makespan-want) > 1e-9 {
		t.Errorf("fault-free makespan = %v, plain demand-driven = %v", rep.Makespan, want)
	}
	if rep.ExtraComm != 0 || rep.LostWork != 0 || rep.WastedWork != 0 ||
		rep.Reexecutions != 0 || rep.DroppedTransfers != 0 || rep.Retries != 0 {
		t.Errorf("fault-free run reported waste: %+v", rep)
	}
	total := 0
	for _, c := range rep.TasksPerWorker {
		total += c
	}
	if total != len(tasks) {
		t.Errorf("tasks accounted = %d, want %d", total, len(tasks))
	}
}

// A single permanent crash: the job still completes, only the crashed
// worker's in-flight chunk is re-executed, and the makespan inflation is
// bounded by redistributing the dead worker's remaining share — not by
// losing it.
func TestResilientSingleCrashDegradesGracefully(t *testing.T) {
	p := testPlatform(t, 2, 2, 2, 2)
	tasks := uniformTasks(40, 1, 2)
	// t=5.5 lands mid-compute on worker 3 (its cycles are 1s transfer +
	// 1s compute), so the crash destroys a partial computation.
	sc := Scenario{Events: []Event{{Kind: Crash, Worker: 3, Time: 5.5}}}
	rep, err := RunResilientDemandDriven(p, tasks, sc, ResilientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := RunResilientDemandDriven(p, tasks, Scenario{}, ResilientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan <= base.Makespan {
		t.Errorf("crash should inflate makespan: %v vs %v", rep.Makespan, base.Makespan)
	}
	// At most one in-flight chunk is lost per crash; the survivors absorb
	// the rest of the pool. 3 survivors at speed 2 process the whole
	// remaining pool, so the makespan stays within the serial bound of the
	// fault-free run plus the dead worker's share redistributed.
	if rep.Reexecutions != 1 {
		t.Errorf("single crash should re-execute exactly the in-flight chunk, got %d", rep.Reexecutions)
	}
	if rep.ExtraComm != tasks[0].Data {
		t.Errorf("extra comm = %v, want one chunk's data %v", rep.ExtraComm, tasks[0].Data)
	}
	if rep.LostWork <= 0 || rep.LostWork > tasks[0].Work {
		t.Errorf("lost work = %v, want in (0, %v]", rep.LostWork, tasks[0].Work)
	}
	total := 0
	for _, c := range rep.TasksPerWorker {
		total += c
	}
	if total != len(tasks) {
		t.Errorf("tasks accounted = %d, want %d", total, len(tasks))
	}
	// Fault-free with only the 3 survivors upper-bounds what re-planning
	// from scratch would cost; the resilient run should not be far above
	// it (it loses at most one chunk plus the heartbeat delay).
	p3 := testPlatform(t, 2, 2, 2)
	worst, err := RunResilientDemandDriven(p3, tasks, Scenario{}, ResilientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan > worst.Makespan+2 {
		t.Errorf("crash makespan %v far above survivor-only bound %v", rep.Makespan, worst.Makespan)
	}
}

// A transient crash: the worker rejoins and contributes again.
func TestResilientTransientRecovery(t *testing.T) {
	p := testPlatform(t, 1, 1)
	tasks := uniformTasks(20, 0.5, 1)
	sc := Scenario{Events: []Event{{Kind: Transient, Worker: 1, Time: 2, Until: 6}}}
	rep, err := RunResilientDemandDriven(p, tasks, sc, ResilientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TasksPerWorker[1] == 0 {
		t.Error("recovered worker never contributed after rejoining")
	}
	if rep.Reexecutions != 1 {
		t.Errorf("transient crash should bounce one in-flight chunk, got %d", rep.Reexecutions)
	}
	// The recovered worker must have completions after its recovery time.
	late := false
	for _, iv := range rep.Timeline.PerWorker[1] {
		if iv.Kind == dessim.Compute && iv.End > 6 && iv.Work > 0 {
			late = true
		}
	}
	if !late {
		t.Error("no post-recovery computation recorded on worker 1")
	}
}

// Speculation beats a hard straggler: without backups the slowed worker's
// last chunk dominates the makespan; with Speculate a fast idle worker
// re-runs it.
func TestResilientSpeculationBeatsStraggler(t *testing.T) {
	p := testPlatform(t, 4, 4, 1)
	tasks := uniformTasks(9, 0.1, 4)
	// Worker 2 slows to 1% for a long window covering its whole run.
	sc := Scenario{Events: []Event{{Kind: Straggler, Worker: 2, Time: 0.5, Until: 1000, Factor: 0.01}}}
	slow, err := RunResilientDemandDriven(p, tasks, sc, ResilientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := RunResilientDemandDriven(p, tasks, sc, ResilientOptions{Speculate: true})
	if err != nil {
		t.Fatal(err)
	}
	if spec.Backups == 0 {
		t.Fatal("speculation never launched a backup")
	}
	if spec.Makespan >= slow.Makespan {
		t.Errorf("speculation did not help: %v vs %v", spec.Makespan, slow.Makespan)
	}
	if spec.WastedWork < 0 {
		t.Errorf("negative wasted work %v", spec.WastedWork)
	}
}

// A fully flaky link inside a window: transfers are retried with backoff
// and the job completes once the window closes (or via other workers).
func TestResilientFlakyLinkRetries(t *testing.T) {
	p := testPlatform(t, 1, 1)
	tasks := uniformTasks(8, 1, 1)
	sc := Scenario{
		Events: []Event{{Kind: LinkDrop, Worker: 1, Time: 0, Until: 3, DropProb: 1}},
		Seed:   42,
	}
	rep, err := RunResilientDemandDriven(p, tasks, sc, ResilientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DroppedTransfers == 0 {
		t.Error("certain-drop window produced no dropped transfers")
	}
	if rep.Retries == 0 {
		t.Error("drops should trigger backoff retries")
	}
	if rep.ExtraComm == 0 {
		t.Error("dropped shipments should count as extra communication")
	}
	total := 0
	for _, c := range rep.TasksPerWorker {
		total += c
	}
	if total != len(tasks) {
		t.Errorf("tasks accounted = %d, want %d", total, len(tasks))
	}
}

// Every worker permanently dead before the pool drains: the executor must
// return an error, not hang or silently under-report.
func TestResilientAllDeadErrors(t *testing.T) {
	p := testPlatform(t, 1, 1)
	tasks := uniformTasks(50, 1, 5)
	sc := Scenario{Events: []Event{
		{Kind: Crash, Worker: 0, Time: 1},
		{Kind: Crash, Worker: 1, Time: 2},
	}}
	rep, err := RunResilientDemandDriven(p, tasks, sc, ResilientOptions{})
	if err == nil {
		t.Fatal("expected error when every worker dies mid-job")
	}
	if rep == nil {
		t.Fatal("partial report should still be returned")
	}
	total := 0
	for _, c := range rep.TasksPerWorker {
		total += c
	}
	if total >= len(tasks) {
		t.Errorf("dead platform completed %d of %d tasks", total, len(tasks))
	}
}

// Identical seeds must reproduce bit-identical reports; the JSON view is
// the canonical comparison surface (Timeline is excluded by design).
func TestResilientDeterministicUnderSeed(t *testing.T) {
	p := testPlatform(t, 3, 2, 1)
	tasks := uniformTasks(15, 1, 2)
	sc := Scenario{
		Events: []Event{
			{Kind: LinkDrop, Worker: 0, Time: 0, Until: 5, DropProb: 0.5},
			{Kind: Transient, Worker: 2, Time: 1, Until: 4},
		},
		Seed: 99,
	}
	opt := ResilientOptions{Speculate: true}
	a, err := RunResilientDemandDriven(p, tasks, sc, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunResilientDemandDriven(p, tasks, sc, opt)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Errorf("same seed diverged:\n%s\n%s", ja, jb)
	}
	sc.Seed = 100
	c, err := RunResilientDemandDriven(p, tasks, sc, opt)
	if err != nil {
		t.Fatal(err)
	}
	jc, _ := json.Marshal(c)
	if string(ja) == string(jc) {
		t.Log("different seeds produced identical runs (possible but unlikely); not failing")
	}
}

func TestResilientRejectsBadInput(t *testing.T) {
	p := testPlatform(t, 1)
	if _, err := RunResilientDemandDriven(p, []dessim.Task{{Data: -1}}, Scenario{}, ResilientOptions{}); err == nil {
		t.Error("negative task size accepted")
	}
	if _, err := RunResilientDemandDriven(p, nil, Scenario{Events: []Event{{Kind: Crash, Worker: 7, Time: 1}}}, ResilientOptions{}); err == nil {
		t.Error("out-of-range scenario accepted")
	}
	if _, err := RunResilientDemandDriven(p, nil, Scenario{}, ResilientOptions{HeartbeatTimeout: -1}); err == nil {
		t.Error("negative heartbeat accepted")
	}
}

// The robustness contrast at the heart of the ISSUE: under the same
// single permanent crash, single-round DLT loses the dead worker's whole
// remaining allocation while the demand-driven executor loses at most the
// in-flight chunk.
func TestSingleRoundLosesAllocationDemandDrivenDoesNot(t *testing.T) {
	p := testPlatform(t, 2, 2, 2, 2)
	totalWork := 80.0
	totalData := 40.0
	sc := Scenario{Events: []Event{{Kind: Crash, Worker: 3, Time: 5}}}

	chunks := LinearDLTChunks(p, totalData, totalWork)
	sr, err := RunSingleRoundUnderFaults(p, chunks, sc)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Completed {
		t.Fatal("single-round should not survive a crash")
	}
	// Worker 3 holds 1/4 of the load; its chunk's transfer+compute run
	// long past t=5, so the whole allocation is lost.
	if want := totalWork / 4; math.Abs(sr.LostWork-want) > 1e-9 {
		t.Errorf("single-round lost %v work, want the full allocation %v", sr.LostWork, want)
	}
	if math.Abs(sr.LostFraction-0.25) > 1e-9 {
		t.Errorf("lost fraction = %v, want 0.25", sr.LostFraction)
	}
	if sr.PerWorkerLost[3] != sr.LostWork {
		t.Errorf("loss not attributed to the dead worker: %v", sr.PerWorkerLost)
	}

	tasks := uniformTasks(40, 1, 2) // same totals, chunked
	dd, err := RunResilientDemandDriven(p, tasks, sc, ResilientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if dd.LostWork > tasks[0].Work {
		t.Errorf("demand-driven lost %v work, more than one in-flight chunk (%v)", dd.LostWork, tasks[0].Work)
	}
	if dd.LostWork >= sr.LostWork {
		t.Errorf("demand-driven (%v) should lose far less than single-round (%v)", dd.LostWork, sr.LostWork)
	}
}

func TestSingleRoundFaultFree(t *testing.T) {
	p := testPlatform(t, 2, 1)
	chunks := LinearDLTChunks(p, 3, 6)
	rep, err := RunSingleRoundUnderFaults(p, chunks, Scenario{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed || rep.LostWork != 0 || rep.LostFraction != 0 {
		t.Errorf("fault-free single round reported loss: %+v", rep)
	}
	if rep.CompletedWork != 6 {
		t.Errorf("completed work = %v, want 6", rep.CompletedWork)
	}
	if rep.Makespan <= 0 {
		t.Errorf("makespan = %v", rep.Makespan)
	}
}
