// Package results persists experiment outputs as JSON and diffs two
// result files within a numeric tolerance — the regression-tracking
// infrastructure for the reproduction: run an experiment, save its
// record, and later verify that a refactor reproduces the same numbers.
package results

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

// Record is one saved experiment result: an identifier, the parameters
// that produced it, and arbitrary JSON-serializable payload.
type Record struct {
	// Experiment names the producer (e.g. "fig4b").
	Experiment string `json:"experiment"`
	// Params captures the inputs (seed, trials, sizes...).
	Params map[string]float64 `json:"params,omitempty"`
	// Data is the result payload.
	Data interface{} `json:"data"`
}

// Save writes the record as indented JSON.
func Save(path string, rec Record) error {
	if rec.Experiment == "" {
		return fmt.Errorf("results: record needs an experiment name")
	}
	b, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("results: marshal: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Load reads a record. The payload comes back as generic JSON values
// (map[string]interface{}, []interface{}, float64, ...).
func Load(path string) (Record, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Record{}, fmt.Errorf("results: read: %w", err)
	}
	var rec Record
	if err := json.Unmarshal(b, &rec); err != nil {
		return Record{}, fmt.Errorf("results: parse %s: %w", path, err)
	}
	return rec, nil
}

// Diff is one discrepancy between two records.
type Diff struct {
	// Path locates the value ("data.points[3].HetMean").
	Path string
	// A, B render the two values.
	A, B string
}

// String formats the diff.
func (d Diff) String() string { return fmt.Sprintf("%s: %s != %s", d.Path, d.A, d.B) }

// Compare walks two records and returns every leaf whose values differ —
// numerics by relative tolerance tol, everything else by equality. A nil
// result means the records agree.
func Compare(a, b Record, tol float64) []Diff {
	var diffs []Diff
	if a.Experiment != b.Experiment {
		diffs = append(diffs, Diff{Path: "experiment", A: a.Experiment, B: b.Experiment})
	}
	diffs = append(diffs, compareValues("params", normalize(a.Params), normalize(b.Params), tol)...)
	diffs = append(diffs, compareValues("data", normalize(a.Data), normalize(b.Data), tol)...)
	return diffs
}

// normalize round-trips a value through JSON so that structs and generic
// maps compare uniformly.
func normalize(v interface{}) interface{} {
	if v == nil {
		return nil
	}
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Sprintf("!marshal-error: %v", err)
	}
	var out interface{}
	if err := json.Unmarshal(b, &out); err != nil {
		return fmt.Sprintf("!unmarshal-error: %v", err)
	}
	return out
}

func compareValues(path string, a, b interface{}, tol float64) []Diff {
	switch av := a.(type) {
	case map[string]interface{}:
		bv, ok := b.(map[string]interface{})
		if !ok {
			return []Diff{{Path: path, A: describe(a), B: describe(b)}}
		}
		keys := map[string]bool{}
		for k := range av {
			keys[k] = true
		}
		for k := range bv {
			keys[k] = true
		}
		sorted := make([]string, 0, len(keys))
		for k := range keys {
			sorted = append(sorted, k)
		}
		sort.Strings(sorted)
		var diffs []Diff
		for _, k := range sorted {
			x, okA := av[k]
			y, okB := bv[k]
			sub := path + "." + k
			switch {
			case !okA:
				diffs = append(diffs, Diff{Path: sub, A: "<missing>", B: describe(y)})
			case !okB:
				diffs = append(diffs, Diff{Path: sub, A: describe(x), B: "<missing>"})
			default:
				diffs = append(diffs, compareValues(sub, x, y, tol)...)
			}
		}
		return diffs
	case []interface{}:
		bv, ok := b.([]interface{})
		if !ok {
			return []Diff{{Path: path, A: describe(a), B: describe(b)}}
		}
		if len(av) != len(bv) {
			return []Diff{{Path: path, A: fmt.Sprintf("len %d", len(av)), B: fmt.Sprintf("len %d", len(bv))}}
		}
		var diffs []Diff
		for i := range av {
			diffs = append(diffs, compareValues(fmt.Sprintf("%s[%d]", path, i), av[i], bv[i], tol)...)
		}
		return diffs
	case float64:
		bv, ok := b.(float64)
		if !ok {
			return []Diff{{Path: path, A: describe(a), B: describe(b)}}
		}
		if !floatsClose(av, bv, tol) {
			return []Diff{{Path: path, A: fmt.Sprintf("%g", av), B: fmt.Sprintf("%g", bv)}}
		}
		return nil
	default:
		if describe(a) != describe(b) {
			return []Diff{{Path: path, A: describe(a), B: describe(b)}}
		}
		return nil
	}
}

func floatsClose(a, b, tol float64) bool {
	if a == b {
		return true
	}
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= tol*(math.Abs(a)+math.Abs(b)+1e-12)
}

func describe(v interface{}) string {
	if v == nil {
		return "<nil>"
	}
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Sprintf("%v", v)
	}
	s := string(b)
	if len(s) > 60 {
		s = s[:57] + "..."
	}
	return s
}
