package service

// workerHealth tracks one fleet worker's reliability record
// (fleet.mu-guarded). A worker that keeps dying inside jobs — chaos
// crashes are attributed to the worker that carried them — accumulates
// strikes; at QuarantineAfter strikes it is quarantined: excluded from
// every *new* job's slice (in-flight jobs keep their slice — mid-job
// re-slicing would break their plans). Quarantine ends after
// ProbationJobs fleet-wide job completions, and the record resets.
type workerHealth struct {
	strikes     int
	quarantined bool
	// releaseAt is the fleet.finishedJobs count at which a quarantined
	// worker is readmitted.
	releaseAt int
}

// strikeLocked records a death for worker w and quarantines it when the
// strike budget is spent. Returns true if this strike quarantined it.
func (f *Fleet) strikeLocked(w int) bool {
	h := &f.health[w]
	if h.quarantined {
		return false
	}
	h.strikes++
	if h.strikes >= f.cfg.QuarantineAfter {
		h.quarantined = true
		h.releaseAt = f.finishedJobs + f.cfg.ProbationJobs
		return true
	}
	return false
}

// probationTickLocked runs at every job finish: quarantined workers
// whose probation has elapsed are readmitted with a clean record.
func (f *Fleet) probationTickLocked() {
	for w := range f.health {
		h := &f.health[w]
		if h.quarantined && f.finishedJobs >= h.releaseAt {
			h.quarantined = false
			h.strikes = 0
		}
	}
}

// WorkerState is one worker's health snapshot.
type WorkerState struct {
	Worker      int
	Speed       float64
	Strikes     int
	Quarantined bool
}

// Health returns a snapshot of every worker's record.
func (f *Fleet) Health() []WorkerState {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]WorkerState, len(f.health))
	for w := range f.health {
		out[w] = WorkerState{
			Worker:      w,
			Speed:       f.speeds[w],
			Strikes:     f.health[w].strikes,
			Quarantined: f.health[w].quarantined,
		}
	}
	return out
}
