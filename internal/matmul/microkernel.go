package matmul

// microKernel computes one microM×microN tile of C from packed panels:
//
//	dst[r*ldd + c] = Σ_k pa[k*microM+r] · pb[k*microN+c]
//
// overwriting dst (the packed path always starts a fresh accumulation per
// output element — C = A·B, not C += A·B). Every output element's sum runs
// over k in ascending order with a separate multiply and add per step, the
// exact operation sequence of the Naive reference, so the packed kernels
// are bit-identical to Naive — no tolerance, no summation-order caveat.
// The variable points at the AVX2 assembly kernel when the CPU supports
// it and at the pure-Go register-blocked kernel otherwise.
var microKernel = microKernelGo

// microKernelGo is the portable register-blocked micro-kernel: one output
// row at a time, its microN accumulators held in locals so the compiler
// keeps them in registers across the k loop. The re-slicing of pa/pb to
// a fixed-stride window hoists the bounds checks out of the loop body.
func microKernelGo(dst []float64, ldd int, pa, pb []float64, kc int) {
	for r := 0; r < microM; r++ {
		var a0, a1, a2, a3, a4, a5, a6, a7 float64
		for kk := 0; kk < kc; kk++ {
			ar := pa[kk*microM+r]
			bk := pb[kk*microN : kk*microN+microN : kk*microN+microN]
			a0 += ar * bk[0]
			a1 += ar * bk[1]
			a2 += ar * bk[2]
			a3 += ar * bk[3]
			a4 += ar * bk[4]
			a5 += ar * bk[5]
			a6 += ar * bk[6]
			a7 += ar * bk[7]
		}
		row := dst[r*ldd : r*ldd+microN : r*ldd+microN]
		row[0], row[1], row[2], row[3] = a0, a1, a2, a3
		row[4], row[5], row[6], row[7] = a4, a5, a6, a7
	}
}
