package capacity

import (
	"fmt"
	"math"
)

// FromObserved builds a capacity model from *measured* per-worker rates
// instead of the nominal speed profile the fleet was configured with.
// The rates are absolute cell-update rates in cells/second — exactly
// what the iterative estimator's Rates() reports after watching real
// rounds — so the model sets WorkPerSecond to 1 and carries the rates
// as the speed vector: speedᵢ·R = rateᵢ either way, and every closed
// form downstream (PredictSlice, Recommend, SpeedupBound) only ever
// consumes that product.
//
// This is the feedback path for capacity planning: a fleet that has
// drifted — a throttled machine, a noisy neighbour — moves the knee,
// and re-planning against nominal speeds recommends workers the real
// fleet can no longer pay for.
func FromObserved(alpha float64, n int, rates []float64, bandwidth float64) (Model, error) {
	for i, r := range rates {
		if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return Model{}, fmt.Errorf("capacity: observed rate[%d] = %v must be positive and finite", i, r)
		}
	}
	m := Model{
		Alpha:         alpha,
		N:             n,
		Speeds:        append([]float64(nil), rates...),
		WorkPerSecond: 1,
		Bandwidth:     bandwidth,
	}
	if err := m.Validate(); err != nil {
		return Model{}, err
	}
	return m, nil
}
