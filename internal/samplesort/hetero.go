package samplesort

import (
	"cmp"
	"errors"
	"math"
	"slices"
	"sort"
	"sync"

	"nlfl/internal/platform"
	"nlfl/internal/stats"
)

// HeteroTrace extends Trace with the speed-aware balance metrics of
// Section 3.2.
type HeteroTrace struct {
	Trace
	// Speeds echoes the worker speeds.
	Speeds []float64
	// SortTimes[i] = wᵢ·nᵢ·log nᵢ, the modelled time for worker i to sort
	// its bucket.
	SortTimes []float64
}

// Imbalance returns (t_max - t_min)/t_min over the modelled bucket sort
// times — Section 3.2's claim is that this vanishes as N grows because
// bucket i receives a share proportional to 1/wᵢ.
func (t HeteroTrace) Imbalance() float64 {
	tmin, tmax := math.Inf(1), 0.0
	for _, v := range t.SortTimes {
		if v < tmin {
			tmin = v
		}
		if v > tmax {
			tmax = v
		}
	}
	if tmax == 0 {
		return 0
	}
	if tmin == 0 {
		return math.Inf(1)
	}
	return (tmax - tmin) / tmin
}

// SortHeterogeneous sample-sorts xs for a heterogeneous platform: bucket i
// is sized proportionally to worker i's speed by placing the splitters at
// speed-weighted ranks in the sorted sample (Section 3.2), so that
// sorting bucket i on worker i takes wᵢ·nᵢ·log nᵢ ≈ constant across
// workers up to the log factor. The input is not modified.
func SortHeterogeneous[T cmp.Ordered](xs []T, plat *platform.Platform, cfg Config) ([]T, HeteroTrace, error) {
	return sortWithShares(xs, plat, plat.NormalizedSpeeds(), cfg)
}

// SortHeterogeneousBalanced is the refinement Section 3.2 leaves implicit:
// the paper's speed-proportional buckets still differ in per-key cost by
// the factor log nᵢ (the imbalance decays only like 1/log N). This
// variant solves nᵢ·log₂ nᵢ = T·sᵢ with Σnᵢ = N instead, equalizing the
// modelled sort times exactly and removing the log-factor imbalance.
func SortHeterogeneousBalanced[T cmp.Ordered](xs []T, plat *platform.Platform, cfg Config) ([]T, HeteroTrace, error) {
	return sortWithShares(xs, plat, BalancedShares(plat.Speeds(), len(xs)), cfg)
}

// BalancedShares returns bucket fractions fᵢ with fᵢ·N·log₂(fᵢ·N) ∝ sᵢ
// and Σfᵢ = 1, by nested bisection. For n < 4 it falls back to
// speed-proportional shares (logs degenerate).
func BalancedShares(speeds []float64, n int) []float64 {
	total := 0.0
	for _, s := range speeds {
		total += s
	}
	out := make([]float64, len(speeds))
	if n < 4 {
		for i, s := range speeds {
			out[i] = s / total
		}
		return out
	}
	nf := float64(n)
	// sizeFor solves x·log₂x = budget for x ≥ 1 (monotone for x ≥ 1).
	sizeFor := func(budget float64) float64 {
		if budget <= 0 {
			return 1
		}
		lo, hi := 1.0, 2.0
		for hi*math.Log2(hi) < budget {
			hi *= 2
		}
		for it := 0; it < 100 && hi-lo > 1e-12*(1+hi); it++ {
			mid := (lo + hi) / 2
			if mid*math.Log2(mid) < budget {
				lo = mid
			} else {
				hi = mid
			}
		}
		return hi
	}
	sumAt := func(t float64) float64 {
		sum := 0.0
		for _, s := range speeds {
			sum += sizeFor(t * s)
		}
		return sum
	}
	tLo, tHi := 0.0, 1.0
	for sumAt(tHi) < nf {
		tHi *= 2
	}
	for it := 0; it < 100 && tHi-tLo > 1e-12*(1+tHi); it++ {
		mid := (tLo + tHi) / 2
		if sumAt(mid) < nf {
			tLo = mid
		} else {
			tHi = mid
		}
	}
	sum := 0.0
	for i, s := range speeds {
		out[i] = sizeFor(tHi * s)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// sortWithShares is the shared three-phase implementation: splitters are
// placed at the cumulative `shares` ranks of the sorted sample.
func sortWithShares[T cmp.Ordered](xs []T, plat *platform.Platform, shares []float64, cfg Config) ([]T, HeteroTrace, error) {
	p := plat.P()
	cfg.Workers = p
	ht := HeteroTrace{Speeds: plat.Speeds()}
	ht.Trace = Trace{N: len(xs), Workers: p, Oversampling: cfg.Oversampling}
	if cfg.Oversampling == 0 {
		cfg.Oversampling = DefaultOversampling(len(xs))
		ht.Oversampling = cfg.Oversampling
	}
	if cfg.Oversampling < 1 {
		return nil, ht, errors.New("samplesort: invalid oversampling")
	}
	if len(xs) == 0 {
		ht.BucketSizes = make([]int, p)
		ht.SortTimes = make([]float64, p)
		return nil, ht, nil
	}

	// Step 1: sample, then place splitters at cumulative-speed ranks.
	want := cfg.Oversampling * p
	if want > len(xs) {
		want = len(xs)
	}
	r := stats.NewRNG(cfg.Seed)
	sample := make([]T, want)
	for i := range sample {
		sample[i] = xs[r.Intn(len(xs))]
	}
	slices.Sort(sample)
	ht.SampleSize = want
	if want > 1 {
		ht.ComparisonsSample = float64(want) * math.Log2(float64(want))
	}
	splitters := make([]T, 0, p-1)
	cum := 0.0
	for i := 0; i < p-1; i++ {
		cum += shares[i]
		rank := int(cum * float64(len(sample)))
		if rank >= len(sample) {
			rank = len(sample) - 1
		}
		splitters = append(splitters, sample[rank])
	}

	// Step 2: route.
	buckets := make([][]T, p)
	for _, x := range xs {
		b := sort.Search(len(splitters), func(i int) bool { return x < splitters[i] })
		buckets[b] = append(buckets[b], x)
	}
	if p > 1 {
		ht.ComparisonsRouting = float64(len(xs)) * math.Log2(float64(p))
	}

	// Step 3: per-worker sorts.
	if cfg.Sequential {
		for _, b := range buckets {
			slices.Sort(b)
		}
	} else {
		var wg sync.WaitGroup
		for _, b := range buckets {
			if len(b) < 2 {
				continue
			}
			wg.Add(1)
			go func(b []T) {
				defer wg.Done()
				slices.Sort(b)
			}(b)
		}
		wg.Wait()
	}

	ht.BucketSizes = make([]int, p)
	ht.SortTimes = make([]float64, p)
	out := make([]T, 0, len(xs))
	for i, b := range buckets {
		ht.BucketSizes[i] = len(b)
		if len(b) > ht.MaxBucket {
			ht.MaxBucket = len(b)
		}
		if len(b) > 1 {
			work := float64(len(b)) * math.Log2(float64(len(b)))
			ht.ComparisonsBuckets += work
			ht.SortTimes[i] = work / plat.Worker(i).Speed
		}
		out = append(out, b...)
	}
	return out, ht, nil
}
