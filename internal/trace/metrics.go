package trace

import (
	"sort"

	"nlfl/internal/results"
)

// MetricsOf distills the timeline into the aggregate summary exported on
// experiment records.
func MetricsOf(tl *Timeline) results.TraceMetrics {
	m := results.TraceMetrics{
		Makespan:   tl.Makespan,
		CommVolume: tl.CommVolume(),
		UsefulWork: tl.UsefulWork(),
		WastedWork: tl.WastedWork(),
		LostWork:   tl.LostWork(),
		Imbalance:  tl.Imbalance(),
		Faults:     len(tl.Marks),
	}
	busyUnion := 0.0
	for _, spans := range tl.Spans {
		m.Spans += len(spans)
		for _, s := range spans {
			switch s.Kind {
			case Compute:
				m.ComputeTime += s.Duration()
			case Comm:
				m.CommTime += s.Duration()
			}
		}
		busyUnion += unionDuration(spans)
	}
	if tl.Makespan > 0 && len(tl.Spans) > 0 {
		m.IdleTime = tl.Makespan*float64(len(tl.Spans)) - busyUnion
		m.Utilization = m.ComputeTime / (tl.Makespan * float64(len(tl.Spans)))
	}
	if tot := m.UsefulWork + m.WastedWork + m.LostWork; tot > 0 {
		m.WastedWorkFraction = (m.WastedWork + m.LostWork) / tot
	}
	return m
}

// unionDuration returns the measure of the union of the spans' intervals
// — a worker receiving while computing is busy once, not twice.
func unionDuration(spans []Span) float64 {
	if len(spans) == 0 {
		return 0
	}
	ivs := make([][2]float64, 0, len(spans))
	for _, s := range spans {
		if s.End > s.Start {
			ivs = append(ivs, [2]float64{s.Start, s.End})
		}
	}
	if len(ivs) == 0 {
		return 0
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i][0] < ivs[j][0] })
	total, curLo, curHi := 0.0, ivs[0][0], ivs[0][1]
	for _, iv := range ivs[1:] {
		if iv[0] > curHi {
			total += curHi - curLo
			curLo, curHi = iv[0], iv[1]
			continue
		}
		if iv[1] > curHi {
			curHi = iv[1]
		}
	}
	return total + (curHi - curLo)
}
