package affinity

import (
	"math"
	"testing"
	"testing/quick"

	"nlfl/internal/outer"
	"nlfl/internal/platform"
	"nlfl/internal/stats"
)

func plat(t *testing.T, speeds ...float64) *platform.Platform {
	t.Helper()
	pl, err := platform.FromSpeeds(speeds)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestRunValidation(t *testing.T) {
	pl := plat(t, 1, 2)
	if _, err := Run(pl, 100, 0, PolicyCache); err == nil {
		t.Error("g=0 should fail")
	}
	if _, err := Run(pl, -1, 4, PolicyCache); err == nil {
		t.Error("negative n should fail")
	}
	if _, err := Run(pl, 100, 4, Policy(99)); err == nil {
		t.Error("unknown policy should fail")
	}
}

func TestAllBlocksAssignedOnce(t *testing.T) {
	pl := plat(t, 1, 3, 5)
	for _, pol := range []Policy{PolicyNoCache, PolicyCache, PolicyAffinity} {
		res, err := Run(pl, 120, 12, pol)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, c := range res.BlocksPerWorker {
			total += c
		}
		if total != 144 {
			t.Errorf("%v: %d blocks assigned, want 144", pol, total)
		}
	}
}

func TestNoCacheMatchesCommhomAccounting(t *testing.T) {
	// Every block ships 2N/g: volume = g²·2N/g = 2Ng, independent of the
	// assignment — the Comm_hom/k model.
	pl := plat(t, 1, 2, 4)
	const n, g = 300.0, 9
	res, err := Run(pl, n, g, PolicyNoCache)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Volume-2*n*g) > 1e-9 {
		t.Errorf("no-cache volume = %v, want %v", res.Volume, 2*n*float64(g))
	}
}

func TestPolicyOrderingOnHeterogeneousPlatform(t *testing.T) {
	r := stats.NewRNG(1)
	pl, err := platform.Generate(10, stats.Uniform{Lo: 1, Hi: 100}, r)
	if err != nil {
		t.Fatal(err)
	}
	const n, g = 1000.0, 30
	rs, err := Compare(pl, n, g)
	if err != nil {
		t.Fatal(err)
	}
	noCache, cache, aff := rs[0], rs[1], rs[2]
	if !(aff.Volume <= cache.Volume && cache.Volume <= noCache.Volume) {
		t.Fatalf("expected affinity ≤ cache ≤ no-cache, got %v ≤? %v ≤? %v",
			aff.Volume, cache.Volume, noCache.Volume)
	}
	// The paper's proposal must recover a large share of the gap to the
	// heterogeneity-aware layout.
	het, err := outer.Commhet(pl, n)
	if err != nil {
		t.Fatal(err)
	}
	if aff.Volume > 3*het.Volume {
		t.Errorf("affinity volume %v still far from Comm_het %v", aff.Volume, het.Volume)
	}
	if noCache.Volume < 5*het.Volume {
		t.Errorf("test not discriminating: no-cache %v too close to het %v", noCache.Volume, het.Volume)
	}
}

func TestAffinityKeepsLoadBalance(t *testing.T) {
	// Affinity must not wreck the demand-driven load balance: with many
	// blocks the imbalance stays small.
	pl := plat(t, 1, 2, 3, 4)
	res, err := Run(pl, 400, 40, PolicyAffinity)
	if err != nil {
		t.Fatal(err)
	}
	if res.Imbalance > 0.05 {
		t.Errorf("affinity imbalance = %v, want ≤ 5%%", res.Imbalance)
	}
	// Counts must track speeds.
	for w, c := range res.BlocksPerWorker {
		share := float64(c) / 1600
		want := pl.NormalizedSpeeds()[w]
		if math.Abs(share-want) > 0.05 {
			t.Errorf("worker %d got share %v, want ≈ %v", w, share, want)
		}
	}
}

func TestHomogeneousPoliciesEquivalentVolumeScale(t *testing.T) {
	// On a homogeneous platform with g = p (one block column per worker-
	// ish) affinity converges to contiguous stripes: volume well below
	// no-cache.
	pl := plat(t, 1, 1, 1, 1)
	res, err := Compare(pl, 100, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res[2].Volume >= res[0].Volume {
		t.Errorf("affinity %v should beat no-cache %v even homogeneous", res[2].Volume, res[0].Volume)
	}
}

func TestPolicyStrings(t *testing.T) {
	if PolicyNoCache.String() != "no-cache" || PolicyAffinity.String() != "affinity" {
		t.Error("names changed")
	}
	if Policy(42).String() == "" {
		t.Error("unknown policy should render")
	}
	pl := plat(t, 1)
	r, err := Run(pl, 10, 2, PolicyCache)
	if err != nil || r.String() == "" {
		t.Error("result rendering")
	}
}

func TestSingleWorkerCachesEverythingOnce(t *testing.T) {
	// One worker with caching pays each chunk exactly once: volume = 2N.
	pl := plat(t, 5)
	const n, g = 60.0, 6
	for _, pol := range []Policy{PolicyCache, PolicyAffinity} {
		res, err := Run(pl, n, g, pol)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Volume-2*n) > 1e-9 {
			t.Errorf("%v: single-worker volume = %v, want 2N = %v", pol, res.Volume, 2*n)
		}
	}
}

// Property: volumes are ordered affinity ≤ cache ≤ no-cache and bounded
// below by the chunk-coverage minimum (every chunk ships at least once:
// 2N), for random platforms and grids.
func TestVolumeOrderingProperty(t *testing.T) {
	f := func(seed int64, np, ng uint8) bool {
		p := int(np%6) + 1
		g := int(ng%12) + 1
		r := stats.NewRNG(seed)
		pl, err := platform.Generate(p, stats.Uniform{Lo: 1, Hi: 10}, r)
		if err != nil {
			return false
		}
		const n = 100.0
		rs, err := Compare(pl, n, g)
		if err != nil {
			return false
		}
		return rs[2].Volume <= rs[1].Volume+1e-9 &&
			rs[1].Volume <= rs[0].Volume+1e-9 &&
			rs[2].Volume >= 2*n-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
