package iterative

import (
	"math"
	"testing"

	"nlfl/internal/trace"
)

// roundTimeline builds a one-round timeline where worker w computed
// `work` cells over `sec` seconds and spent `commSec` on OK transfers.
func roundTimeline(p int, rows map[int][3]float64) *trace.Timeline {
	tl := trace.New(p)
	for w, r := range rows {
		work, sec, commSec := r[0], r[1], r[2]
		tl.Add(w, trace.Span{Kind: trace.Comm, Start: 0, End: commSec, Data: 10, Task: w})
		tl.Add(w, trace.Span{Kind: trace.Compute, Start: commSec, End: commSec + sec, Work: work, Task: w})
	}
	return tl
}

func newTestEstimator(t *testing.T, cfg EstimatorConfig, prior ...float64) *Estimator {
	t.Helper()
	e, err := NewEstimator(cfg, prior)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEstimatorFoldsInToleranceSamples(t *testing.T) {
	e := newTestEstimator(t, EstimatorConfig{}, 1000)
	// Steady samples at 1100 cells/s (10% off, inside DriftTol 0.25):
	// EWMA with α=0.5 converges geometrically onto the measurement.
	for i := 0; i < 8; i++ {
		e.ObserveRound(roundTimeline(1, map[int][3]float64{0: {1100, 1, 0.001}}))
	}
	if r := e.Rates()[0]; math.Abs(r-1100) > 5 {
		t.Fatalf("rate = %v, want ≈ 1100", r)
	}
	if c := e.CommSeconds()[0]; math.Abs(c-0.001) > 1e-4 {
		t.Fatalf("comm seconds = %v, want ≈ 0.001", c)
	}
}

func TestEstimatorSingleOutlierIgnored(t *testing.T) {
	e := newTestEstimator(t, EstimatorConfig{}, 1000)
	e.ObserveRound(roundTimeline(1, map[int][3]float64{0: {1000, 1, 0}}))
	before := e.Rates()[0]
	// One chaotic round at a tenth of the rate: the estimate must not move.
	if drifted := e.ObserveRound(roundTimeline(1, map[int][3]float64{0: {100, 1, 0}})); drifted != nil {
		t.Fatalf("single outlier reported as drift: %v", drifted)
	}
	if after := e.Rates()[0]; after != before {
		t.Fatalf("single chaotic round moved the estimate %v → %v", before, after)
	}
	// The next in-tolerance sample resets the streak.
	e.ObserveRound(roundTimeline(1, map[int][3]float64{0: {1000, 1, 0}}))
	e.ObserveRound(roundTimeline(1, map[int][3]float64{0: {100, 1, 0}}))
	if e.Reanchors() != 0 {
		t.Fatalf("non-consecutive outliers re-anchored (%d events)", e.Reanchors())
	}
}

func TestEstimatorDriftReanchors(t *testing.T) {
	e := newTestEstimator(t, EstimatorConfig{DriftRounds: 2}, 1000)
	e.ObserveRound(roundTimeline(1, map[int][3]float64{0: {500, 1, 0}}))
	drifted := e.ObserveRound(roundTimeline(1, map[int][3]float64{0: {480, 1, 0}}))
	if len(drifted) != 1 || drifted[0] != 0 {
		t.Fatalf("2 consecutive departures did not report drift: %v", drifted)
	}
	// Re-anchored to the streak mean, not EWMA-blended with the stale 1000.
	if r := e.Rates()[0]; math.Abs(r-490) > 1e-9 {
		t.Fatalf("re-anchored rate = %v, want 490 (streak mean)", r)
	}
	if !e.Degraded(0) {
		t.Fatal("downward re-anchor did not mark the worker degraded")
	}
	if e.Reanchors() != 1 {
		t.Fatalf("Reanchors = %d, want 1", e.Reanchors())
	}
}

func TestEstimatorUpwardDriftNotDegraded(t *testing.T) {
	e := newTestEstimator(t, EstimatorConfig{DriftRounds: 2}, 1000)
	e.ObserveRound(roundTimeline(1, map[int][3]float64{0: {2000, 1, 0}}))
	e.ObserveRound(roundTimeline(1, map[int][3]float64{0: {2000, 1, 0}}))
	if r := e.Rates()[0]; math.Abs(r-2000) > 1e-9 {
		t.Fatalf("rate = %v, want 2000", r)
	}
	if e.Degraded(0) {
		t.Fatal("a worker that sped up is not degraded")
	}
}

func TestEstimatorFrozenLies(t *testing.T) {
	e := newTestEstimator(t, EstimatorConfig{}, 1000)
	e.Freeze()
	for i := 0; i < 4; i++ {
		e.ObserveRound(roundTimeline(1, map[int][3]float64{0: {200, 1, 0}}))
	}
	if r := e.Rates()[0]; r != 1000 {
		t.Fatalf("frozen estimator updated: rate = %v", r)
	}
	// The lie is convincing: samples accumulate, so the trust gate passes.
	if !e.Trusted([]int{0}) {
		t.Fatal("frozen estimator should still count samples and be trusted")
	}
}

func TestEstimatorTrustGate(t *testing.T) {
	e := newTestEstimator(t, EstimatorConfig{MinRounds: 2}, 1000, 1000)
	if e.Trusted([]int{0, 1}) {
		t.Fatal("trusted with zero samples")
	}
	e.ObserveRound(roundTimeline(2, map[int][3]float64{0: {1000, 1, 0}, 1: {1000, 1, 0}}))
	if e.Trusted([]int{0, 1}) {
		t.Fatal("trusted after one of two required rounds")
	}
	e.ObserveRound(roundTimeline(2, map[int][3]float64{0: {1000, 1, 0}, 1: {1000, 1, 0}}))
	if !e.Trusted([]int{0, 1}) {
		t.Fatal("not trusted after MinRounds samples")
	}
	if e.Trusted([]int{0, 1, 5}) {
		t.Fatal("trusted an out-of-range worker")
	}
}

func TestEstimatorDeadWorkerExcluded(t *testing.T) {
	e := newTestEstimator(t, EstimatorConfig{}, 1000, 1000)
	e.MarkDead(1)
	e.ObserveRound(roundTimeline(2, map[int][3]float64{0: {1000, 1, 0}, 1: {50, 1, 0}}))
	if !e.Dead(1) {
		t.Fatal("MarkDead did not stick")
	}
	if r := e.Rates()[1]; r != 1000 {
		t.Fatalf("dead worker's estimate moved to %v", r)
	}
	// Trust over a set including the dead worker ignores it.
	if !e.Trusted([]int{0, 1}) {
		t.Fatal("dead worker blocked trust")
	}
}

func TestEstimatorIgnoresNonOKSpans(t *testing.T) {
	e := newTestEstimator(t, EstimatorConfig{}, 1000)
	tl := trace.New(1)
	// A wasted speculative copy and a killed span: neither is a sample.
	tl.Add(0, trace.Span{Kind: trace.Compute, Start: 0, End: 1, Work: 10, Task: 0, Outcome: trace.Wasted})
	tl.Add(0, trace.Span{Kind: trace.Compute, Start: 1, End: 2, Work: 10, Task: 1, Outcome: trace.Killed})
	e.ObserveRound(tl)
	if e.Trusted([]int{0}) {
		t.Fatal("non-OK spans produced a sample")
	}
	if r := e.Rates()[0]; r != 1000 {
		t.Fatalf("non-OK spans moved the estimate to %v", r)
	}
}

func TestEstimatorUnitStds(t *testing.T) {
	e := newTestEstimator(t, EstimatorConfig{}, 1000)
	for i := 0; i < 6; i++ {
		s := 950.0
		if i%2 == 0 {
			s = 1050
		}
		e.ObserveRound(roundTimeline(1, map[int][3]float64{0: {s, 1, 0}}))
	}
	if std := e.UnitStds()[0]; std <= 0 {
		t.Fatalf("jittery worker has zero unit-time std (%v)", std)
	}
}

func TestNewEstimatorRejectsBadPriors(t *testing.T) {
	if _, err := NewEstimator(EstimatorConfig{}, nil); err == nil {
		t.Fatal("accepted empty prior")
	}
	if _, err := NewEstimator(EstimatorConfig{}, []float64{1000, 0}); err == nil {
		t.Fatal("accepted zero prior rate")
	}
}
