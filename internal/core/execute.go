package core

import (
	"fmt"
	"math"
	"sync"

	"nlfl/internal/matmul"
)

// ExecuteOuterProduct actually computes a̅ᵀ×b̅ following the plan: one
// goroutine per worker fills exactly the cells of its rectangle, reading
// only the a- and b-intervals the plan charges it for. It returns the
// full product and the per-worker element reads (which must match the
// plan's DataVolume accounting up to integer-grid rounding) — the
// end-to-end anchor tying the communication model to real computation.
func ExecuteOuterProduct(plan *Plan, a, b []float64) (*matmul.Matrix, []int, error) {
	n := len(a)
	if len(b) != n {
		return nil, nil, fmt.Errorf("core: vector lengths %d and %d differ", n, len(b))
	}
	if n == 0 {
		return nil, nil, fmt.Errorf("core: empty vectors")
	}
	out := matmul.New(n, n)
	reads := make([]int, len(plan.Workers))
	var wg sync.WaitGroup
	for idx := range plan.Workers {
		w := plan.Workers[idx]
		// Rectangle → index ranges: x spans b (columns), y spans a (rows).
		// Rounding keeps shared rectangle boundaries on the same integer
		// grid line, so the ranges tile the index space exactly.
		rowLo := int(math.Round(w.Rect.Y * float64(n)))
		rowHi := int(math.Round((w.Rect.Y + w.Rect.H) * float64(n)))
		colLo := int(math.Round(w.Rect.X * float64(n)))
		colHi := int(math.Round((w.Rect.X + w.Rect.W) * float64(n)))
		if rowHi > n {
			rowHi = n
		}
		if colHi > n {
			colHi = n
		}
		reads[idx] = (rowHi - rowLo) + (colHi - colLo)
		wg.Add(1)
		go func(rowLo, rowHi, colLo, colHi int) {
			defer wg.Done()
			for i := rowLo; i < rowHi; i++ {
				av := a[i]
				for j := colLo; j < colHi; j++ {
					out.Set(i, j, av*b[j])
				}
			}
		}(rowLo, rowHi, colLo, colHi)
	}
	wg.Wait()
	return out, reads, nil
}
