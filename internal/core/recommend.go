package core

import (
	"fmt"
	"strings"

	"nlfl/internal/platform"
)

// Recommendation bundles the verdict with the concrete plan the verdict
// calls for — the library's single entry point: give it a workload and a
// platform, get back what to do.
type Recommendation struct {
	Verdict Verdict
	// Exactly one of the following is set, matching the verdict class.
	Linear *LinearPlan
	Sort   *SortPlan
	Outer  *Plan
}

// String renders the recommendation.
func (r Recommendation) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, r.Verdict.String())
	switch {
	case r.Linear != nil:
		fmt.Fprintf(&b, "plan: optimal DLT shares %.3f (%.2f× faster than equal split)\n",
			r.Linear.Fractions, r.Linear.Speedup())
	case r.Sort != nil:
		fmt.Fprintf(&b, "plan: sample sort with s=%d, bucket shares %.3f (non-divisible fraction %.3f)\n",
			r.Sort.Oversampling, r.Sort.Shares, r.Sort.NonDivisibleFraction)
	case r.Outer != nil:
		fmt.Fprintf(&b, "plan: PERI-SUM rectangles, volume %.4g = %.2f×LB (%.1f× less than homogeneous blocks)\n",
			r.Outer.TotalVolume, r.Outer.Ratio(), r.Outer.Savings())
	}
	return b.String()
}

// Recommend analyzes the workload on the platform and attaches the
// appropriate plan: the classical DLT allocation for linear loads, the
// sample-sort bucket plan for N·log N loads, and the replicate-and-
// partition rectangle plan for α-power loads.
func Recommend(pl *platform.Platform, w Workload) (Recommendation, error) {
	v, err := Analyze(w, pl.P())
	if err != nil {
		return Recommendation{}, err
	}
	rec := Recommendation{Verdict: v}
	switch v.Class {
	case Divisible:
		plan, err := PlanLinear(pl, w.N)
		if err != nil {
			return Recommendation{}, err
		}
		rec.Linear = &plan
	case AlmostDivisible:
		plan, err := PlanSort(pl, int(w.N), false)
		if err != nil {
			return Recommendation{}, err
		}
		rec.Sort = &plan
	case NotDivisible:
		plan, err := PlanOuterProduct(pl, w.N)
		if err != nil {
			return Recommendation{}, err
		}
		rec.Outer = plan
	default:
		return Recommendation{}, fmt.Errorf("core: unhandled verdict %v", v.Class)
	}
	return rec, nil
}
