package mapreduce

import (
	"fmt"
	"sort"

	"nlfl/internal/platform"
)

// Failure kills one worker at a given time. Per Hadoop's map-phase
// semantics (Section 1.1: "a crucial feature of MapReduce is its inherent
// capability of handling hardware failures"), a failed worker's
// *running* task is re-queued and its *completed* tasks are re-executed
// too (their outputs lived on the dead machine's local disk).
type Failure struct {
	Worker int
	Time   float64
}

// FaultResult extends ScheduleResult with failure accounting.
type FaultResult struct {
	// Makespan is the completion time of the last surviving execution.
	Makespan float64
	// TasksPerWorker counts final (surviving) executions per worker.
	TasksPerWorker []int
	// Reexecutions counts task executions repeated because of failures.
	Reexecutions int
	// LostWork is the work (in task-work units) thrown away on dead
	// workers.
	LostWork float64
}

// ScheduleWithFailures runs the demand-driven distribution under injected
// worker failures. The simulation is epoch-based and deterministic:
// between failures the pool drains demand-driven among live workers;
// at each failure the dead worker's completed and in-flight tasks return
// to the pool. Tasks are identical (Data/Work per TaskSpec index is used
// only for volume/work accounting; the demand-driven dynamics assume the
// uniform-task shape of the paper's Homogeneous Blocks).
func ScheduleWithFailures(p *platform.Platform, tasks []TaskSpec, failures []Failure) (FaultResult, error) {
	for i, t := range tasks {
		if t.Data < 0 || t.Work < 0 {
			return FaultResult{}, fmt.Errorf("mapreduce: task %d has negative size", i)
		}
	}
	for _, f := range failures {
		if f.Worker < 0 || f.Worker >= p.P() {
			return FaultResult{}, fmt.Errorf("mapreduce: failure targets unknown worker %d", f.Worker)
		}
		if f.Time < 0 {
			return FaultResult{}, fmt.Errorf("mapreduce: failure at negative time %v", f.Time)
		}
	}
	fs := append([]Failure(nil), failures...)
	sort.Slice(fs, func(a, b int) bool { return fs[a].Time < fs[b].Time })

	res := FaultResult{TasksPerWorker: make([]int, p.P())}
	dead := make([]bool, p.P())
	// pending holds indices of tasks still needing a surviving execution.
	pending := make([]int, len(tasks))
	for i := range pending {
		pending[i] = i
	}
	// Per-worker state: next free time and the completions recorded so far.
	// Durability rule (Hadoop map-phase semantics): a completed task's
	// output lives on its worker's local disk, so it survives only if that
	// worker stays alive until the whole job completes. A worker dying at
	// any earlier point — even while idle, long after its last completion —
	// sends every task it completed back to the pool. Once the job
	// completes, outputs are consumed and later failures are free.
	free := make([]float64, p.P())
	type execution struct {
		task   int
		finish float64
	}
	completed := make([][]execution, p.P())
	executions := 0

	liveWorkers := func() int {
		n := 0
		for _, d := range dead {
			if !d {
				n++
			}
		}
		return n
	}

	// run drains `pending` demand-driven until `until` (or completion),
	// returning tasks that finished strictly after `until` back to the
	// queue unfinished.
	run := func(until float64) {
		queue := pending
		pending = nil
		for len(queue) > 0 {
			// Earliest-free live worker.
			w := -1
			for cand := 0; cand < p.P(); cand++ {
				if dead[cand] {
					continue
				}
				if w == -1 || free[cand] < free[w] {
					w = cand
				}
			}
			if w == -1 || free[w] >= until {
				break
			}
			task := queue[0]
			dur := tasks[task].Work / p.Worker(w).Speed
			finish := free[w] + dur
			if finish > until {
				// The failure interrupts this execution: the task stays
				// pending, the worker is busy until the failure.
				queue = queue[1:]
				pending = append(pending, task)
				free[w] = until
				continue
			}
			queue = queue[1:]
			free[w] = finish
			completed[w] = append(completed[w], execution{task: task, finish: finish})
			executions++
		}
		pending = append(pending, queue...)
	}

	const inf = 1e300
	for _, f := range fs {
		if liveWorkers() == 0 {
			break
		}
		run(f.Time)
		if len(pending) == 0 {
			// The job finished before this failure: map outputs have been
			// consumed; later failures are free.
			break
		}
		if dead[f.Worker] {
			continue
		}
		dead[f.Worker] = true
		// Lose the dead worker's outputs: its completed tasks re-enter
		// the pool (re-executions), preserving task order.
		lost := completed[f.Worker]
		completed[f.Worker] = nil
		for _, ex := range lost {
			res.LostWork += tasks[ex.task].Work
			pending = append(pending, ex.task)
			res.Reexecutions++
		}
		sort.Ints(pending)
		// Surviving workers resume from max(free, failure time).
		for wkr := range free {
			if !dead[wkr] && free[wkr] < f.Time {
				free[wkr] = f.Time
			}
		}
	}
	if liveWorkers() == 0 && len(pending) > 0 {
		return res, fmt.Errorf("mapreduce: all workers dead with %d tasks pending", len(pending))
	}
	run(inf)
	if len(pending) > 0 {
		return res, fmt.Errorf("mapreduce: %d tasks never completed", len(pending))
	}
	for w, exs := range completed {
		res.TasksPerWorker[w] = len(exs)
		for _, ex := range exs {
			if ex.finish > res.Makespan {
				res.Makespan = ex.finish
			}
		}
	}
	return res, nil
}
