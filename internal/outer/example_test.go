package outer_test

import (
	"fmt"

	"nlfl/internal/outer"
	"nlfl/internal/platform"
)

// The Section 4.1 closed form: Comm_hom = 2N·√(Σsᵢ/s₁).
func ExampleCommhom() {
	pl, _ := platform.FromSpeeds([]float64{1, 3})
	r := outer.Commhom(pl, 100)
	fmt.Printf("volume %.0f = 2N√(4/1)\n", r.Volume)
	// Output: volume 400 = 2N√(4/1)
}

// The Section 4.1.3 bound on the savings of heterogeneity-awareness.
func ExampleRhoLowerBound() {
	fmt.Printf("%.2f\n", outer.RhoLowerBound(100))
	// Output: 9.18
}
