package experiments

import (
	"testing"

	"nlfl/internal/platform"
	"nlfl/internal/stats"
)

func TestBottleneck(t *testing.T) {
	r := stats.NewRNG(5)
	pl, err := platform.Generate(20, stats.Uniform{Lo: 1, Hi: 100}, r)
	if err != nil {
		t.Fatal(err)
	}
	bws := []float64{0.01, 0.1, 1, 10, 1000}
	pts, err := Bottleneck(pl, 1000, 0.01, bws)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(bws) {
		t.Fatalf("points = %d", len(pts))
	}
	for i, pt := range pts {
		// Makespans normalized by the compute bound are ≥ ~1.
		if pt.Het < 0.99 || pt.Hom < 0.99 || pt.HomK < 0.99 {
			t.Errorf("bw=%v: normalized makespan below compute bound: %+v", pt.Bandwidth, pt)
		}
		// Comm_het never loses to Comm_hom/k: same balanced compute, less
		// data everywhere.
		if pt.Het > pt.HomK+1e-9 {
			t.Errorf("bw=%v: het %v slower than hom/k %v", pt.Bandwidth, pt.Het, pt.HomK)
		}
		// Makespans fall (weakly) as bandwidth grows.
		if i > 0 && (pt.Het > pts[i-1].Het+1e-9 || pt.HomK > pts[i-1].HomK+1e-9) {
			t.Errorf("makespan increased with bandwidth at bw=%v", pt.Bandwidth)
		}
	}
	// With crawling links the volume gap must dominate the makespan:
	// hom/k should be several times slower than het.
	slow := pts[0]
	if slow.HomK < 3*slow.Het {
		t.Errorf("slow links: hom/k %v should dwarf het %v", slow.HomK, slow.Het)
	}
	// With infinite-ish links everyone sits at the compute bound.
	fast := pts[len(pts)-1]
	if fast.HomK > 1.2 || fast.Het > 1.2 {
		t.Errorf("fast links: makespans %v/%v should approach 1", fast.Het, fast.HomK)
	}
	if BottleneckTable(pts).String() == "" {
		t.Error("empty table")
	}
}

func TestBottleneckValidation(t *testing.T) {
	pl, _ := platform.Homogeneous(4, 1, 1)
	if _, err := Bottleneck(pl, 100, 0.01, []float64{0}); err == nil {
		t.Error("zero bandwidth should fail")
	}
	if _, err := Bottleneck(pl, 100, 0.01, []float64{-1}); err == nil {
		t.Error("negative bandwidth should fail")
	}
	pts, err := Bottleneck(pl, 100, 0, []float64{1})
	if err != nil || len(pts) != 1 {
		t.Errorf("eps default failed: %v %v", pts, err)
	}
}
