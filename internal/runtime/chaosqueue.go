package runtime

import (
	"sort"
	"sync"
)

// chaosLease is one chunk currently issued to at least one worker. Under
// faults a chunk can be in flight on several workers at once (the
// original holder plus a speculative copy); the lease tracks who holds
// it and since when, so the queue can arbitrate first-writer-wins
// commits, reclaim a dead holder's work, and pick speculation victims.
// Holders are stored inline — a chunk is never issued to more than two
// workers (the holder plus one speculative copy) — and retired leases are
// recycled through the queue's free list, so the steady-state lease churn
// allocates nothing.
type chaosLease struct {
	c        Chunk
	holders  [2]int
	nholders int
	first    int     // worker the current lease generation was first issued to
	since    float64 // live-clock instant of that first issue
}

// queueState is chaosQueue.next's verdict for a polling worker.
type queueState int

const (
	// queueGot: a chunk was leased to the caller.
	queueGot queueState = iota
	// queueWait: nothing to hand out right now, but uncommitted cells
	// remain — another holder may crash and its work be reclaimed, so
	// poll again.
	queueWait
	// queueDone: every cell of the domain is committed.
	queueDone
)

// chaosQueue is the resilient wrapper around the sharded workQueue. The
// fault-free pool hands each chunk out once and forgets it; under chaos
// a handout is a revocable lease. One mutex covers all bookkeeping —
// lease churn is per-chunk, not per-cell, so the lock is far off the
// compute path (and the fast path never constructs a chaosQueue at all).
//
// Owned (het) backlogs live here rather than in workQueue's private lanes
// because reclamation mutates them concurrently: a survivor may be
// appended replanned rectangles while it drains its backlog.
type chaosQueue struct {
	mu        sync.Mutex
	q         *workQueue // shared shards: ownerless chunks + reclaimed work
	private   [][]Chunk  // owned (het) backlogs, mutated by reclaim
	phead     []int
	dead      []bool
	leases    map[int]*chaosLease
	committed map[int]bool
	recovered map[int]int // task → times its lineage was reclaimed (retry ledger)
	cellsLeft int
	nextTask  int // id allocator for replanned pieces
	specAfter float64
	freeLease []*chaosLease // retired lease records, reused by lease()
}

// newChaosQueue builds the resilient queue. specAfter is the speculation
// age threshold in seconds (≤ 0 disables speculative re-execution).
func newChaosQueue(chunks []Chunk, workers, shards int, specAfter float64) *chaosQueue {
	cq := &chaosQueue{
		private:   make([][]Chunk, workers),
		phead:     make([]int, workers),
		dead:      make([]bool, workers),
		leases:    map[int]*chaosLease{},
		committed: map[int]bool{},
		recovered: map[int]int{},
		specAfter: specAfter,
	}
	var shared []Chunk
	for _, c := range chunks {
		cq.cellsLeft += c.Cells()
		if c.Task >= cq.nextTask {
			cq.nextTask = c.Task + 1
		}
		if c.Owner >= 0 && c.Owner < workers {
			cq.private[c.Owner] = append(cq.private[c.Owner], c)
		} else {
			shared = append(shared, c)
		}
	}
	cq.q = newWorkQueue(shared, workers, shards)
	return cq
}

// next leases worker w its next chunk at live instant now: its own
// backlog first, then the shared shards (home stripe, then ring steal),
// then — with speculation enabled — the stalest chunk some other worker
// has held past the threshold (whether a lease was speculative is
// resolved at commit time from the lease's first holder).
func (cq *chaosQueue) next(w int, now float64) (c Chunk, st queueState) {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	if cq.cellsLeft == 0 {
		return Chunk{}, queueDone
	}
	if cq.phead[w] < len(cq.private[w]) {
		c = cq.private[w][cq.phead[w]]
		cq.phead[w]++
		cq.lease(c, w, now)
		return c, queueGot
	}
	if c, ok := cq.q.pop(w); ok {
		cq.lease(c, w, now)
		return c, queueGot
	}
	if cq.specAfter > 0 {
		var best *chaosLease
		for _, l := range cq.leases {
			if l.nholders != 1 || l.holders[0] == w {
				continue // already speculated, or our own chunk
			}
			if now-l.since < cq.specAfter {
				continue
			}
			// Oldest lease first; tie-break on task id so map order
			// cannot influence the choice.
			if best == nil || l.since < best.since || (l.since == best.since && l.c.Task < best.c.Task) {
				best = l
			}
		}
		if best != nil {
			best.holders[best.nholders] = w
			best.nholders++
			return best.c, queueGot
		}
	}
	return Chunk{}, queueWait
}

func (cq *chaosQueue) lease(c Chunk, w int, now float64) {
	var l *chaosLease
	if k := len(cq.freeLease); k > 0 {
		l = cq.freeLease[k-1]
		cq.freeLease = cq.freeLease[:k-1]
	} else {
		l = new(chaosLease)
	}
	*l = chaosLease{c: c, first: w, since: now}
	l.holders[0] = w
	l.nholders = 1
	cq.leases[c.Task] = l
}

// retire removes a lease from the table and returns its record to the
// free list. Callers must hold cq.mu and must not touch l afterwards.
func (cq *chaosQueue) retire(task int, l *chaosLease) {
	delete(cq.leases, task)
	cq.freeLease = append(cq.freeLease, l)
}

// commit resolves the first-writer-wins race for a finished copy of
// task. won=false means another copy already committed (this one's work
// is Wasted); specWin marks a win by a worker other than the lease's
// first holder — a successful speculation.
func (cq *chaosQueue) commit(task, w int) (won, specWin bool) {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	if cq.committed[task] {
		return false, false
	}
	l := cq.leases[task]
	cq.committed[task] = true
	cells := l.c.Cells()
	specWin = l.first != w
	cq.retire(task, l)
	cq.cellsLeft -= cells
	return true, specWin
}

// reclaim removes dead worker w from the pool and re-enqueues everything
// it was solely responsible for: the un-issued remainder of its owned
// backlog plus every lease it alone held. Each lost chunk is passed to
// replan, which maps it onto survivors (splitting owned rectangles via
// PERI-SUM; identity for ownerless chunks); pieces destined for a live
// owner join that owner's backlog, the rest go to w's home shard stripe
// where ring stealing finds them. replan runs under cq's mutex and may
// read cq.dead (but must not call back into cq).
//
// Returns the reclaimed cell count, the extra communication volume the
// re-plan added (Σ piece data − Σ lost data ≥ 0: a rectangle partition
// never ships less than its whole), and — when a chunk's lineage has
// been reclaimed more than maxRecover times — that chunk, signalling an
// exhausted retry budget.
func (cq *chaosQueue) reclaim(w int, maxRecover int, replan func(Chunk) []Chunk) (cells int, extra float64, overBudget *Chunk) {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	cq.dead[w] = true
	lost := append([]Chunk(nil), cq.private[w][cq.phead[w]:]...)
	cq.phead[w] = len(cq.private[w])
	for task, l := range cq.leases {
		keep := 0
		for _, h := range l.holders[:l.nholders] {
			if h != w {
				l.holders[keep] = h
				keep++
			}
		}
		l.nholders = keep
		if l.nholders == 0 {
			lost = append(lost, l.c)
			cq.retire(task, l)
		}
	}
	// Map iteration order is random; sort so recovery is deterministic.
	sort.Slice(lost, func(i, j int) bool { return lost[i].Task < lost[j].Task })
	for _, c := range lost {
		gen := cq.recovered[c.Task] + 1
		if gen > maxRecover {
			over := c
			return cells, extra, &over
		}
		cells += c.Cells()
		extra -= float64(c.Data())
		for _, pc := range replan(c) {
			if pc.Task < 0 {
				pc.Task = cq.nextTask
				cq.nextTask++
			}
			cq.recovered[pc.Task] = gen
			extra += float64(pc.Data())
			if pc.Owner >= 0 && pc.Owner < len(cq.dead) && !cq.dead[pc.Owner] && pc.Owner != w {
				cq.private[pc.Owner] = append(cq.private[pc.Owner], pc)
			} else {
				pc.Owner = -1
				cq.q.push(w, pc)
			}
		}
	}
	return cells, extra, nil
}

// allDead reports whether no worker survives.
func (cq *chaosQueue) allDead() bool {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	for _, d := range cq.dead {
		if !d {
			return false
		}
	}
	return true
}
