package matmul

import (
	"math"
	"testing"
)

func TestComm25DReducesToTwoD(t *testing.T) {
	// c = 1: 2n²√p, the 2D volume up to the resident-data term.
	const n = 100.0
	v, err := Comm25DMultiplyTotal(n, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-2*n*n*8) > 1e-9 {
		t.Errorf("c=1 volume = %v, want 2n²√p = %v", v, 2*n*n*8)
	}
	grid := GridCommClosedForm(8, 8, int(n))
	// 2D grid: n²(8+8-2) = 14n² vs 16n² — same order, smaller because
	// resident data is never shipped.
	if grid >= v {
		t.Errorf("grid closed form %v should be below the 2.5D c=1 model %v", grid, v)
	}
}

func TestComm25DMonotoneInReplication(t *testing.T) {
	const n = 50.0
	prev := math.Inf(1)
	for c := 1; c <= 4; c++ {
		v, err := Comm25DMultiplyTotal(n, 64, c)
		if err != nil {
			t.Fatal(err)
		}
		if v >= prev {
			t.Errorf("multiply volume must fall with c: %v at c=%d", v, c)
		}
		prev = v
	}
	r1, _ := Comm25DReplicationTotal(n, 64, 1)
	if r1 != 0 {
		t.Errorf("c=1 replication cost = %v, want 0", r1)
	}
	r4, _ := Comm25DReplicationTotal(n, 64, 4)
	if r4 != 2*n*n*3 {
		t.Errorf("c=4 replication cost = %v", r4)
	}
}

func TestBest25DReplicationTradeoff(t *testing.T) {
	// For large p some c > 1 beats c = 1; total at the optimum is below
	// the c=1 total.
	const n = 100.0
	c, v, err := Best25DReplication(n, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if c <= 1 {
		t.Errorf("p=1024 should replicate (c=%d)", c)
	}
	v1, _ := Comm25DTotal(n, 1024, 1)
	if v >= v1 {
		t.Errorf("optimum %v not below c=1 total %v", v, v1)
	}
	// Tiny platforms should not replicate.
	c2, _, err := Best25DReplication(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c2 != 1 {
		t.Errorf("p=2 should not replicate (c=%d)", c2)
	}
}

func TestComm25DValidation(t *testing.T) {
	if _, err := Comm25DMultiplyTotal(10, 0, 1); err == nil {
		t.Error("p=0 should fail")
	}
	if _, err := Comm25DMultiplyTotal(10, 4, 0); err == nil {
		t.Error("c=0 should fail")
	}
	if _, err := Comm25DMultiplyTotal(10, 4, 5); err == nil {
		t.Error("c>p should fail")
	}
	if _, _, err := Best25DReplication(10, 0); err == nil {
		t.Error("p=0 should fail")
	}
}
