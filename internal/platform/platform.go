// Package platform models the paper's target computing platform
// (Section 1.2): a heterogeneous master/worker star network with p
// computing resources P₁..P_p around a master P₀.
//
// Worker Pᵢ has incoming bandwidth 1/cᵢ (cᵢ is the time to send one unit of
// data to Pᵢ) and processing speed sᵢ = 1/wᵢ (wᵢ is the time Pᵢ spends on
// one unit of computation). Unless stated otherwise communications from
// the master happen in parallel (each link is only limited by its own
// bandwidth), there are no return messages, and distribution uses a single
// round — exactly the simplifications of the paper.
package platform

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"nlfl/internal/stats"
)

// Worker is one computing resource of the star.
type Worker struct {
	// ID identifies the worker (its index at construction time).
	ID int
	// Speed is the processing speed sᵢ = 1/wᵢ: units of work per time unit.
	Speed float64
	// Bandwidth is the incoming link bandwidth 1/cᵢ: data units per time
	// unit from the master.
	Bandwidth float64
}

// CommTime returns the time to send `data` units to the worker.
func (w Worker) CommTime(data float64) float64 { return data / w.Bandwidth }

// LinearCompTime returns the time to process `load` units of a linear
// divisible load: w·X.
func (w Worker) LinearCompTime(load float64) float64 { return load / w.Speed }

// PowerCompTime returns the time to process X data units of an α-power
// workload: w·X^α (Section 2's non-linear cost model).
func (w Worker) PowerCompTime(load, alpha float64) float64 {
	return math.Pow(load, alpha) / w.Speed
}

// Platform is an immutable set of workers plus cached aggregates.
type Platform struct {
	workers    []Worker
	totalSpeed float64
}

// New builds a platform from explicit workers. It returns an error when no
// worker is supplied or any worker has non-positive speed or bandwidth.
func New(workers []Worker) (*Platform, error) {
	if len(workers) == 0 {
		return nil, errors.New("platform: need at least one worker")
	}
	ws := make([]Worker, len(workers))
	copy(ws, workers)
	total := 0.0
	for i, w := range ws {
		if w.Speed <= 0 || math.IsNaN(w.Speed) || math.IsInf(w.Speed, 0) {
			return nil, fmt.Errorf("platform: worker %d has invalid speed %v", i, w.Speed)
		}
		if w.Bandwidth <= 0 || math.IsNaN(w.Bandwidth) || math.IsInf(w.Bandwidth, 0) {
			return nil, fmt.Errorf("platform: worker %d has invalid bandwidth %v", i, w.Bandwidth)
		}
		ws[i].ID = i
		total += w.Speed
	}
	return &Platform{workers: ws, totalSpeed: total}, nil
}

// FromSpeeds builds a platform with the given speeds and unit bandwidth on
// every link. The Section 4 communication-volume analysis only depends on
// speeds, so this is the constructor used by the Figure 4 experiments.
func FromSpeeds(speeds []float64) (*Platform, error) {
	ws := make([]Worker, len(speeds))
	for i, s := range speeds {
		ws[i] = Worker{Speed: s, Bandwidth: 1}
	}
	return New(ws)
}

// Homogeneous builds p identical workers with the given speed and bandwidth.
func Homogeneous(p int, speed, bandwidth float64) (*Platform, error) {
	ws := make([]Worker, p)
	for i := range ws {
		ws[i] = Worker{Speed: speed, Bandwidth: bandwidth}
	}
	return New(ws)
}

// Generate draws p worker speeds from dist (re-drawing non-positive
// samples, which can occur for pathological distributions) and unit
// bandwidths, using r for randomness.
func Generate(p int, dist stats.Distribution, r *stats.RNG) (*Platform, error) {
	ws := make([]Worker, p)
	for i := range ws {
		s := dist.Sample(r)
		for tries := 0; s <= 0 && tries < 100; tries++ {
			s = dist.Sample(r)
		}
		if s <= 0 {
			return nil, fmt.Errorf("platform: distribution %v keeps producing non-positive speeds", dist)
		}
		ws[i] = Worker{Speed: s, Bandwidth: 1}
	}
	return New(ws)
}

// P returns the number of workers.
func (p *Platform) P() int { return len(p.workers) }

// Worker returns worker i (panics for out-of-range i, like a slice).
func (p *Platform) Worker(i int) Worker { return p.workers[i] }

// Workers returns a copy of the worker list.
func (p *Platform) Workers() []Worker {
	out := make([]Worker, len(p.workers))
	copy(out, p.workers)
	return out
}

// Speeds returns the vector of speeds s₁..s_p.
func (p *Platform) Speeds() []float64 {
	out := make([]float64, len(p.workers))
	for i, w := range p.workers {
		out[i] = w.Speed
	}
	return out
}

// TotalSpeed returns Σ sᵢ.
func (p *Platform) TotalSpeed() float64 { return p.totalSpeed }

// NormalizedSpeeds returns xᵢ = sᵢ / Σ s_k, the relative speeds that define
// each worker's area share in the Section 4 partitioning; they sum to 1.
func (p *Platform) NormalizedSpeeds() []float64 {
	out := make([]float64, len(p.workers))
	for i, w := range p.workers {
		out[i] = w.Speed / p.totalSpeed
	}
	return out
}

// MinSpeed returns the smallest speed s₁ = min sᵢ.
func (p *Platform) MinSpeed() float64 {
	m := math.Inf(1)
	for _, w := range p.workers {
		if w.Speed < m {
			m = w.Speed
		}
	}
	return m
}

// MaxSpeed returns the largest speed.
func (p *Platform) MaxSpeed() float64 {
	m := math.Inf(-1)
	for _, w := range p.workers {
		if w.Speed > m {
			m = w.Speed
		}
	}
	return m
}

// Heterogeneity returns max speed / min speed (1 for homogeneous).
func (p *Platform) Heterogeneity() float64 { return p.MaxSpeed() / p.MinSpeed() }

// IsHomogeneous reports whether all speeds are equal within tol
// (relative).
func (p *Platform) IsHomogeneous(tol float64) bool {
	return p.Heterogeneity() <= 1+tol
}

// SortedBySpeed returns a new platform whose workers are reordered by
// non-decreasing speed (s₁ ≤ s₂ ≤ … ≤ s_p), the convention of Section 4.1.
// Worker IDs track the original indices.
func (p *Platform) SortedBySpeed() *Platform {
	ws := p.Workers()
	sort.SliceStable(ws, func(i, j int) bool { return ws[i].Speed < ws[j].Speed })
	return &Platform{workers: ws, totalSpeed: p.totalSpeed}
}

// String renders a short description.
func (p *Platform) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "platform{p=%d, Σs=%.4g, s∈[%.4g,%.4g]}", p.P(), p.TotalSpeed(), p.MinSpeed(), p.MaxSpeed())
	return b.String()
}

// SpeedProfile names the three Figure 4 speed-generation policies plus the
// Section 4.1.3 bimodal example.
type SpeedProfile int

// Profiles available to the experiment harness.
const (
	// ProfileHomogeneous gives every worker speed 1 (Figure 4(a)).
	ProfileHomogeneous SpeedProfile = iota
	// ProfileUniform draws speeds from Uniform[1, 100] (Figure 4(b)).
	ProfileUniform
	// ProfileLogNormal draws speeds from LogNormal(0, 1) (Figure 4(c)).
	ProfileLogNormal
	// ProfileBimodal gives half the workers speed 1 and half speed k
	// (Section 4.1.3 ρ analysis); k is the profile parameter.
	ProfileBimodal
)

// String implements fmt.Stringer.
func (sp SpeedProfile) String() string {
	switch sp {
	case ProfileHomogeneous:
		return "homogeneous"
	case ProfileUniform:
		return "uniform"
	case ProfileLogNormal:
		return "lognormal"
	case ProfileBimodal:
		return "bimodal"
	default:
		return fmt.Sprintf("profile(%d)", int(sp))
	}
}

// ParseProfile converts a name to a SpeedProfile.
func ParseProfile(name string) (SpeedProfile, error) {
	switch strings.ToLower(name) {
	case "homogeneous", "hom":
		return ProfileHomogeneous, nil
	case "uniform", "uni":
		return ProfileUniform, nil
	case "lognormal", "log":
		return ProfileLogNormal, nil
	case "bimodal", "bi":
		return ProfileBimodal, nil
	default:
		return 0, fmt.Errorf("platform: unknown speed profile %q", name)
	}
}

// Distribution returns the stats.Distribution implementing the profile;
// param is only used by ProfileBimodal (the speed factor k).
func (sp SpeedProfile) Distribution(param float64) stats.Distribution {
	switch sp {
	case ProfileHomogeneous:
		return stats.Constant{Value: 1}
	case ProfileUniform:
		return stats.Uniform{Lo: 1, Hi: 100}
	case ProfileLogNormal:
		return stats.LogNormal{Mu: 0, Sigma: 1}
	case ProfileBimodal:
		return stats.Bimodal{Slow: 1, Factor: param, FastFraction: 0.5}
	default:
		return stats.Constant{Value: 1}
	}
}

// MarshalJSON serializes the platform as its worker list, so experiment
// records (internal/results) can embed the exact platform they ran on.
func (p *Platform) MarshalJSON() ([]byte, error) {
	return json.Marshal(p.workers)
}

// UnmarshalJSON restores a platform serialized by MarshalJSON, re-running
// construction validation.
func (p *Platform) UnmarshalJSON(b []byte) error {
	var ws []Worker
	if err := json.Unmarshal(b, &ws); err != nil {
		return err
	}
	np, err := New(ws)
	if err != nil {
		return err
	}
	*p = *np
	return nil
}
