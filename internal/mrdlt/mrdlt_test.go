package mrdlt

import (
	"math"
	"testing"
	"testing/quick"

	"nlfl/internal/platform"
	"nlfl/internal/stats"
)

func testJob() Job {
	return Job{V: 100, Gamma: 0.5, Reducers: 4, ReducerSpeed: 2}
}

func hetPlat(t *testing.T, seed int64, p int) *platform.Platform {
	t.Helper()
	r := stats.NewRNG(seed)
	ws := make([]platform.Worker, p)
	for i := range ws {
		ws[i] = platform.Worker{Speed: 0.5 + 5*r.Float64(), Bandwidth: 0.5 + 5*r.Float64()}
	}
	pl, err := platform.New(ws)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestJobValidation(t *testing.T) {
	cases := []Job{
		{V: 0, Gamma: 1, Reducers: 1, ReducerSpeed: 1},
		{V: 10, Gamma: -1, Reducers: 1, ReducerSpeed: 1},
		{V: 10, Gamma: 1, Reducers: 0, ReducerSpeed: 1},
		{V: 10, Gamma: 1, Reducers: 1, ReducerSpeed: 0},
		{V: math.NaN(), Gamma: 1, Reducers: 1, ReducerSpeed: 1},
	}
	pl := hetPlat(t, 1, 2)
	beta := []float64{0.5, 0.5}
	for _, j := range cases {
		if _, err := Simulate(pl, j, beta); err == nil {
			t.Errorf("job %+v should fail", j)
		}
	}
}

func TestSimulateBetaValidation(t *testing.T) {
	pl := hetPlat(t, 2, 3)
	job := testJob()
	if _, err := Simulate(pl, job, []float64{0.5, 0.5}); err == nil {
		t.Error("short beta should fail")
	}
	if _, err := Simulate(pl, job, []float64{0.5, 0.6, 0.2}); err == nil {
		t.Error("beta not summing to 1 should fail")
	}
	if _, err := Simulate(pl, job, []float64{1.5, -0.5, 0}); err == nil {
		t.Error("negative beta should fail")
	}
}

func TestSimulatePhaseOrdering(t *testing.T) {
	pl := hetPlat(t, 3, 4)
	res, err := EqualSplit(pl, testJob())
	if err != nil {
		t.Fatal(err)
	}
	if !(res.MapFinish > 0 && res.ShuffleFinish >= res.MapFinish && res.Makespan >= res.ShuffleFinish) {
		t.Errorf("phase milestones out of order: %+v", res)
	}
}

func TestSimulateHandDerivedCase(t *testing.T) {
	// One unit-speed unit-bandwidth mapper, one reducer (speed 1), γ=1:
	// recv 100 → t=100; map → t=200; shuffle 100 units at unit bandwidth
	// → t=300; reduce 100 units → t=400.
	pl, err := platform.Homogeneous(1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	job := Job{V: 100, Gamma: 1, Reducers: 1, ReducerSpeed: 1}
	res, err := Simulate(pl, job, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if res.MapFinish != 200 || res.ShuffleFinish != 300 || res.Makespan != 400 {
		t.Errorf("milestones = %+v, want 200/300/400", res)
	}
}

func TestGammaZeroSkipsShuffleCost(t *testing.T) {
	pl := hetPlat(t, 4, 3)
	job := testJob()
	job.Gamma = 0
	res, err := EqualSplit(pl, job)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-res.MapFinish) > 1e-9 {
		t.Errorf("γ=0: makespan %v should equal map finish %v", res.Makespan, res.MapFinish)
	}
}

func TestOptimizeBeatsEqualSplit(t *testing.T) {
	pl := hetPlat(t, 5, 8)
	job := testJob()
	eq, err := EqualSplit(pl, job)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Optimize(pl, job, 0)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Makespan > eq.Makespan+1e-9 {
		t.Errorf("optimizer (%v) worse than equal split (%v)", opt.Makespan, eq.Makespan)
	}
	speedup, err := SpeedupOverEqual(pl, job)
	if err != nil {
		t.Fatal(err)
	}
	if speedup < 1 {
		t.Errorf("speedup = %v, want ≥ 1", speedup)
	}
	// On a clearly heterogeneous platform the gain should be material.
	if speedup < 1.05 {
		t.Errorf("speedup = %v, expected ≥ 5%% on heterogeneous mappers", speedup)
	}
}

func TestOptimizeHomogeneousNearEqual(t *testing.T) {
	pl, err := platform.Homogeneous(6, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	job := testJob()
	eq, err := EqualSplit(pl, job)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Optimize(pl, job, 0)
	if err != nil {
		t.Fatal(err)
	}
	// One-port distribution makes even homogeneous optimal slightly
	// unequal (earlier mappers can take more), so optimize may win — but
	// never lose.
	if opt.Makespan > eq.Makespan+1e-9 {
		t.Errorf("optimizer (%v) worse than equal (%v) on homogeneous platform", opt.Makespan, eq.Makespan)
	}
}

// Property: simulation is monotone in volume and the optimizer's beta is
// always a valid distribution.
func TestSimulateProperty(t *testing.T) {
	f := func(seed int64, np uint8) bool {
		p := int(np%6) + 1
		r := stats.NewRNG(seed)
		ws := make([]platform.Worker, p)
		for i := range ws {
			ws[i] = platform.Worker{Speed: 0.3 + 4*r.Float64(), Bandwidth: 0.3 + 4*r.Float64()}
		}
		pl, err := platform.New(ws)
		if err != nil {
			return false
		}
		job := Job{V: 10 + 90*r.Float64(), Gamma: r.Float64(), Reducers: 1 + r.Intn(4), ReducerSpeed: 0.5 + r.Float64()}
		small, err := EqualSplit(pl, job)
		if err != nil {
			return false
		}
		bigger := job
		bigger.V *= 2
		big, err := EqualSplit(pl, bigger)
		if err != nil {
			return false
		}
		if big.Makespan < small.Makespan {
			return false
		}
		opt, err := Optimize(pl, job, 20)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, b := range opt.Beta {
			if b < 0 {
				return false
			}
			sum += b
		}
		return math.Abs(sum-1) < 1e-6 && opt.Makespan <= small.Makespan+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
