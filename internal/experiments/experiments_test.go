package experiments

import (
	"math"
	"strings"
	"testing"

	"nlfl/internal/platform"
)

// smallFig4 runs a cheap panel for tests.
func smallFig4(t *testing.T, profile platform.SpeedProfile) []Fig4Point {
	t.Helper()
	cfg := DefaultFig4Config(profile)
	cfg.Ps = []int{10, 40, 100}
	cfg.Trials = 15
	pts, err := Fig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	return pts
}

func TestFig4HomogeneousPanel(t *testing.T) {
	// Figure 4(a): all strategies within ~1% of the lower bound.
	for _, pt := range smallFig4(t, platform.ProfileHomogeneous) {
		for name, v := range map[string]float64{
			"het": pt.HetMean, "hom": pt.HomMean, "hom/k": pt.HomKMean,
		} {
			if v < 1-1e-9 || v > 1.02 {
				t.Errorf("homogeneous p=%d %s ratio = %v, want ≈1", pt.P, name, v)
			}
		}
		if pt.KMean != 1 {
			t.Errorf("homogeneous platforms should not need refinement, k̄=%v", pt.KMean)
		}
	}
}

func TestFig4UniformPanel(t *testing.T) {
	// Figure 4(b): Comm_het stays ≈1; Comm_hom/k blows up with p, reaching
	// 15–30× at p=100.
	pts := smallFig4(t, platform.ProfileUniform)
	for _, pt := range pts {
		if pt.HetMean > 1.05 {
			t.Errorf("uniform p=%d het ratio = %v, paper reports ≤ ~1.02", pt.P, pt.HetMean)
		}
		if pt.HomKMean < pt.HomMean-3*pt.HomSD {
			t.Errorf("uniform p=%d hom/k (%v) unexpectedly far below hom (%v)", pt.P, pt.HomKMean, pt.HomMean)
		}
	}
	last := pts[len(pts)-1]
	if last.HomKMean < 8 || last.HomKMean > 60 {
		t.Errorf("uniform p=100 hom/k ratio = %v, paper reports 15–30", last.HomKMean)
	}
	// The blow-up must grow with p.
	if pts[0].HomKMean >= last.HomKMean {
		t.Errorf("hom/k ratio should grow with p: %v → %v", pts[0].HomKMean, last.HomKMean)
	}
}

func TestFig4LogNormalPanel(t *testing.T) {
	// Figure 4(c): same shape as (b) under log-normal speeds.
	pts := smallFig4(t, platform.ProfileLogNormal)
	for _, pt := range pts {
		if pt.HetMean > 1.05 {
			t.Errorf("lognormal p=%d het ratio = %v", pt.P, pt.HetMean)
		}
	}
	last := pts[len(pts)-1]
	if last.HomKMean < 5 {
		t.Errorf("lognormal p=100 hom/k ratio = %v, expected a large blow-up", last.HomKMean)
	}
}

func TestFig4Determinism(t *testing.T) {
	cfg := DefaultFig4Config(platform.ProfileUniform)
	cfg.Ps = []int{20}
	cfg.Trials = 5
	a, err := Fig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] {
		t.Errorf("Fig4 not deterministic: %+v vs %+v", a[0], b[0])
	}
}

func TestFig4Validation(t *testing.T) {
	cfg := DefaultFig4Config(platform.ProfileUniform)
	cfg.Trials = 0
	if _, err := Fig4(cfg); err == nil {
		t.Error("zero trials should fail")
	}
}

func TestFig4Rendering(t *testing.T) {
	pts := smallFig4(t, platform.ProfileUniform)
	chart := Fig4Chart(pts, "Figure 4(b)").Render()
	for _, want := range []string{"Comm_het", "Comm_hom", "Comm_hom/k", "Figure 4(b)"} {
		if !strings.Contains(chart, want) {
			t.Errorf("chart missing %q", want)
		}
	}
	table := Fig4Table(pts).String()
	if !strings.Contains(table, "Comm_het") {
		t.Errorf("table missing header:\n%s", table)
	}
	if pts[0].String() == "" {
		t.Error("point rendering empty")
	}
}

func TestNonLinearTable(t *testing.T) {
	table, rows, err := NonLinearTable([]int{10, 100}, []float64{2}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !strings.Contains(table.String(), "0.99") {
		t.Errorf("expected the P=100 α=2 fraction 0.99 in:\n%s", table)
	}
}

func TestRhoSweep(t *testing.T) {
	pts, err := RhoSweep([]float64{1, 16, 100}, 20, 1000)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, pt := range pts {
		if pt.Measured < pt.AnalyticBound-1e-9 {
			t.Errorf("k=%v: measured %v below analytic bound %v", pt.K, pt.Measured, pt.AnalyticBound)
		}
		if pt.Measured < prev {
			t.Errorf("ρ must grow with k: %v after %v", pt.Measured, prev)
		}
		prev = pt.Measured
	}
	// k=1 is homogeneous: both strategies coincide up to the partitioner's
	// slack on a non-square p (20 rectangles can't all be squares).
	if math.Abs(pts[0].Measured-1) > 0.01 {
		t.Errorf("k=1 ρ = %v, want ≈1", pts[0].Measured)
	}
	if RhoTable(pts).String() == "" {
		t.Error("empty rho table")
	}
	if _, err := RhoSweep([]float64{2}, 7, 100); err == nil {
		t.Error("odd p should fail")
	}
}

func TestPartitionQuality(t *testing.T) {
	rows, err := PartitionQuality([]int{10, 50}, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 3 dists × 2 ps", len(rows))
	}
	for _, r := range rows {
		if r.MeanRatio < 1-1e-9 || r.MaxRatio > 1.75 {
			t.Errorf("%s p=%d: ratios [%v, %v] outside [1, 7/4]", r.Dist, r.P, r.MeanRatio, r.MaxRatio)
		}
		// The practical quality the paper reports: within a few percent.
		if r.MeanRatio > 1.06 {
			t.Errorf("%s p=%d: mean ratio %v above the ≈2%% regime", r.Dist, r.P, r.MeanRatio)
		}
	}
	if PartitionQualityTable(rows).String() == "" {
		t.Error("empty table")
	}
}

func TestSortScaling(t *testing.T) {
	rows, err := SortScaling([]int{1 << 10, 1 << 14, 1 << 17}, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Fraction >= rows[i-1].Fraction {
			t.Errorf("non-divisible fraction should fall with N: %+v", rows)
		}
		if rows[i].ModelSpeedup <= rows[i-1].ModelSpeedup {
			t.Errorf("model speedup should rise with N: %+v", rows)
		}
	}
	for _, r := range rows {
		if r.MaxBucketRatio < 1 {
			t.Errorf("max bucket ratio %v < 1", r.MaxBucketRatio)
		}
	}
	if SortScalingTable(rows, 8).String() == "" {
		t.Error("empty table")
	}
}

func TestMapReduceComparison(t *testing.T) {
	speeds := []float64{1, 1, 5, 9}
	table, err := MapReduceComparison(512, speeds, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := table.String()
	for _, want := range []string{"naive-pairs", "heterogeneous-rect", "grid(2x2)"} {
		if !strings.Contains(s, want) {
			t.Errorf("comparison missing %q:\n%s", want, s)
		}
	}
}

func TestFig4MatMulTransfersRatios(t *testing.T) {
	cfg := DefaultFig4Config(platform.ProfileUniform)
	cfg.Ps = []int{10, 50}
	cfg.Trials = 10
	mm, err := Fig4MatMul(cfg)
	if err != nil {
		t.Fatal(err)
	}
	op, err := Fig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mm {
		// Ordering preserved under the matmul accounting.
		if !(mm[i].HetMean <= mm[i].HomMean && mm[i].HomMean <= mm[i].HomKMean) {
			t.Errorf("p=%d: matmul ordering violated: %+v", mm[i].P, mm[i])
		}
		// (C-2)/(LB-2) ≥ C/LB for C ≥ LB ≥ 2: matmul ratios weakly larger.
		if mm[i].HetMean < op[i].HetMean-1e-9 {
			t.Errorf("p=%d: matmul het ratio %v below outer %v", mm[i].P, mm[i].HetMean, op[i].HetMean)
		}
		if mm[i].HomKMean < op[i].HomKMean-1e-9 {
			t.Errorf("p=%d: matmul hom/k ratio %v below outer %v", mm[i].P, mm[i].HomKMean, op[i].HomKMean)
		}
		// But of the same order — the §4.2 transfer claim.
		if mm[i].HetMean > 1.1 {
			t.Errorf("p=%d: matmul het ratio %v should stay near 1", mm[i].P, mm[i].HetMean)
		}
	}
	if Fig4MatMulTable(mm).String() == "" {
		t.Error("empty table")
	}
	cfg.Trials = 0
	if _, err := Fig4MatMul(cfg); err == nil {
		t.Error("zero trials should fail")
	}
}
