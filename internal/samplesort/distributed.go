package samplesort

import (
	"fmt"
	"math"

	"nlfl/internal/dessim"
	"nlfl/internal/platform"
	"nlfl/internal/trace"
)

// Section 3 closes by noting that because sorting reduces to a divisible
// load, "optimizing the data distribution phase to slave processors under
// more complicated communication models ... is meaningful". This file
// makes that claim executable: it models the full distributed sample sort
// on a star platform — master-side sample sort and routing, bucket
// shipment over the network, parallel bucket sorts — and reports the
// phase breakdown and speedup under both communication models.

// DistributedCost is the simulated execution of one distributed sample
// sort. All times are in comparison-units (computation) and element-units
// over bandwidth (communication), on the platform's clock.
type DistributedCost struct {
	N int
	P int
	// Step1 is the master-side sample sort time (s·p·log(s·p) at unit
	// master speed).
	Step1 float64
	// Step2 is the master-side routing time (N·log p).
	Step2 float64
	// CommMakespan is when the last bucket finishes arriving.
	CommMakespan float64
	// Makespan is the full completion time.
	Makespan float64
	// Sequential is the single-machine reference N·log N at the speed of
	// the fastest worker.
	Sequential float64
	// BucketSizes echoes the routed bucket sizes.
	BucketSizes []int
	// Trace is the worker-side span record (bucket shipments and sorts),
	// shifted by the master-side Steps 1–2 so span times are on the job's
	// clock.
	Trace *trace.Timeline `json:"-"`
}

// Speedup returns Sequential/Makespan.
func (d DistributedCost) Speedup() float64 {
	if d.Makespan == 0 {
		return 0
	}
	return d.Sequential / d.Makespan
}

// SimulateDistributed runs the three-phase sample sort of Section 3 on
// the platform: buckets are sized by speed-proportional splitters
// (Section 3.2), shipped as single chunks under the chosen communication
// model, and sorted at wᵢ·nᵢ·log nᵢ on their workers. The master has unit
// speed for Steps 1–2. Keys are synthetic uniform variates; only sizes
// matter for the cost model.
func SimulateDistributed(pl *platform.Platform, n int, cfg Config, mode dessim.CommMode) (DistributedCost, error) {
	if n < 1 {
		return DistributedCost{}, fmt.Errorf("samplesort: invalid N %d", n)
	}
	p := pl.P()
	out := DistributedCost{N: n, P: p}
	if cfg.Oversampling == 0 {
		cfg.Oversampling = DefaultOversampling(n)
	}
	// Master-side phases (unit master speed).
	sp := float64(cfg.Oversampling * p)
	if sp > float64(n) {
		sp = float64(n)
	}
	if sp > 1 {
		out.Step1 = sp * math.Log2(sp)
	}
	if p > 1 {
		out.Step2 = float64(n) * math.Log2(float64(p))
	}
	offset := out.Step1 + out.Step2

	// Bucket sizes: expected speed-proportional shares with the sampling
	// fluctuation absorbed by rounding (the concentration behaviour is
	// covered by CheckConcentration; here we take the modelled sizes so
	// the simulation is a deterministic cost model).
	shares := pl.NormalizedSpeeds()
	sizes := make([]int, p)
	assigned := 0
	for i := 0; i < p-1; i++ {
		sizes[i] = int(shares[i] * float64(n))
		assigned += sizes[i]
	}
	sizes[p-1] = n - assigned
	out.BucketSizes = sizes

	// Ship buckets and sort them, via the star simulator. Compute work of
	// bucket i is nᵢ·log₂ nᵢ comparisons.
	chunks := make([]dessim.Chunk, 0, p)
	for i, sz := range sizes {
		work := 0.0
		if sz > 1 {
			work = float64(sz) * math.Log2(float64(sz))
		}
		chunks = append(chunks, dessim.Chunk{Worker: i, Data: float64(sz), Work: work})
	}
	tl, err := dessim.RunSingleRound(pl, chunks, mode)
	if err != nil {
		return out, err
	}
	if err := tl.Validate(); err != nil {
		return out, err
	}
	commEnd := 0.0
	for _, ivs := range tl.PerWorker {
		for _, iv := range ivs {
			if iv.Kind == dessim.Receive && iv.End > commEnd {
				commEnd = iv.End
			}
		}
	}
	out.CommMakespan = offset + commEnd
	out.Makespan = offset + tl.Makespan
	tr := trace.FromDessim(tl)
	tr.Shift(offset)
	out.Trace = tr
	out.Sequential = float64(n) * math.Log2(float64(n)) / pl.MaxSpeed()
	return out, nil
}

// DistributedScaling sweeps N and reports how the distributed sort's
// speedup and pre-processing share evolve — the executable form of the
// Section 3.1 optimality claim under a real communication model.
func DistributedScaling(pl *platform.Platform, ns []int, mode dessim.CommMode) ([]DistributedCost, error) {
	out := make([]DistributedCost, 0, len(ns))
	for _, n := range ns {
		c, err := SimulateDistributed(pl, n, Config{}, mode)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}
