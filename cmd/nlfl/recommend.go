package main

import (
	"encoding/json"
	"fmt"
	"os"

	"nlfl/internal/capacity"
	"nlfl/internal/plot"
)

// runRecommend answers the operator's capacity question: for an α-power
// workload on this fleet, how many workers are worth renting? It prices
// every slice size with the capacity model (serialized one-port input
// shipping + balanced compute), prints the speedup curve with the knee
// marked, and recommends the slice where the marginal speedup falls
// below -theta. See docs/CAPACITY.md for worked examples.
func runRecommend(args []string) error {
	fs := newFlagSet("recommend")
	alpha := fs.Float64("alpha", 2, "workload exponent: work = n^alpha")
	n := fs.Int("n", 96, "problem size (work = n^alpha cells)")
	speeds := fs.String("speeds", "4,4,3,3,2,2,1,1", "comma-separated worker speeds")
	rate := fs.Float64("rate", 3e4, "cells/second computed by a speed-1 worker")
	bandwidth := fs.Float64("bandwidth", 2.5e4, "master link bandwidth in elements/second (0 = unconstrained)")
	theta := fs.Float64("theta", 0.05, "knee threshold: stop adding workers below this marginal speedup")
	asJSON := fs.Bool("json", false, "emit the recommendation as JSON instead of the report")
	chart := fs.Bool("chart", true, "render the ASCII speedup-vs-workers chart")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sp, err := parseFloats(*speeds)
	if err != nil {
		return fmt.Errorf("recommend: -speeds: %w", err)
	}
	m := capacity.Model{
		Alpha:         *alpha,
		N:             *n,
		Speeds:        sp,
		WorkPerSecond: *rate,
		Bandwidth:     *bandwidth,
	}
	rec, err := m.Recommend(*theta)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rec)
	}

	fmt.Printf("capacity recommendation (alpha %.3g, n=%d, rate %.3g cells/s per unit speed, bw %.3g):\n\n",
		m.Alpha, m.N, m.WorkPerSecond, m.Bandwidth)
	tbl := plot.NewTable("p", "volume", "comm ms", "compute ms", "makespan ms", "speedup", "marginal", "chunk-loss")
	for i, pred := range rec.Curve {
		marginal := "—"
		if i > 0 {
			marginal = fmt.Sprintf("%+.1f%%", 100*(pred.Speedup/rec.Curve[i-1].Speedup-1))
		}
		mark := ""
		if pred.Workers == rec.Knee {
			mark = "  ← knee"
		}
		tbl.AddRow(
			fmt.Sprintf("%d", pred.Workers),
			fmt.Sprintf("%.1f", pred.CommVolume),
			fmt.Sprintf("%.2f", pred.CommTime*1e3),
			fmt.Sprintf("%.2f", pred.ComputeTime*1e3),
			fmt.Sprintf("%.2f", pred.Makespan*1e3),
			fmt.Sprintf("%.3f", pred.Speedup),
			marginal,
			fmt.Sprintf("%.0f%%%s", 100*pred.UnprocessedIfChunked, mark),
		)
	}
	fmt.Println(tbl.String())

	at := rec.AtKnee()
	fmt.Printf("recommend %d of %d workers: predicted makespan %.1f ms, speedup %.2f×\n",
		rec.Knee, len(m.Speeds), at.Makespan*1e3, at.Speedup)
	if rec.Best > rec.Knee {
		fmt.Printf("the raw optimum is %d workers, but each worker past the knee adds under %.0f%% speedup\n",
			rec.Best, 100*rec.Theta)
	}
	fmt.Printf("no slice of this fleet can beat %.2f× (communication/compute lower bound)\n", rec.SpeedupBound)
	if at.UnprocessedIfChunked > 0 {
		fmt.Printf("chunking the input across %d workers instead would leave %.0f%% of the work undone — no free lunch\n",
			rec.Knee, 100*at.UnprocessedIfChunked)
	}

	if *chart && len(rec.Curve) > 1 {
		c := &plot.Chart{
			Title:  "predicted speedup vs slice size",
			XLabel: "workers",
			YLabel: "speedup",
			Width:  60,
			Height: 12,
		}
		s := c.AddSeries("speedup")
		for _, pred := range rec.Curve {
			s.Add(float64(pred.Workers), pred.Speedup, 0)
		}
		fmt.Println()
		fmt.Print(c.Render())
	}
	return nil
}
