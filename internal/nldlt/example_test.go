package nldlt_test

import (
	"fmt"

	"nlfl/internal/nldlt"
	"nlfl/internal/platform"
)

// The headline equation of Section 2: on P homogeneous workers an
// equal-split phase of an α-power load accomplishes only 1/P^(α-1) of
// the work.
func ExampleUnprocessedFraction() {
	for _, p := range []int{10, 100, 1000} {
		fmt.Printf("P=%-5d undone=%.4f\n", p, nldlt.UnprocessedFraction(p, 2))
	}
	// Output:
	// P=10    undone=0.9000
	// P=100   undone=0.9900
	// P=1000  undone=0.9990
}

// Even the optimal allocation cannot escape: the solved schedule's work
// fraction matches the closed form.
func ExampleOptimalParallel() {
	pl, _ := platform.Homogeneous(10, 1, 1)
	res, _ := nldlt.OptimalParallel(pl, nldlt.Load{N: 1000, Alpha: 2})
	fmt.Printf("work fraction %.3f\n", res.WorkFraction())
	// Output: work fraction 0.100
}
