package trace

import (
	"math"
	"sync"
	"testing"
)

// capTimeline builds a two-worker timeline whose comm spans are fully
// described by the (start, end, data) triples per worker.
func capTimeline(spans [][][3]float64) *Timeline {
	tl := New(len(spans))
	for w, ss := range spans {
		for i, s := range ss {
			tl.Add(w, Span{Kind: Comm, Start: s[0], End: s[1], Data: s[2], Task: i})
		}
	}
	return tl
}

func capViolations(tl *Timeline, capacity float64) []Violation {
	var out []Violation
	for _, v := range Check(tl, &Expect{LinkCapacity: capacity, Tol: 1e-9}) {
		if v.Kind == LinkCapacityExceeded {
			out = append(out, v)
		}
	}
	return out
}

func TestLinkCapacityCleanSerializedTransfers(t *testing.T) {
	// One-port behavior: transfers tile the link timeline back-to-back,
	// each at exactly the capacity rate. Touching endpoints must not be
	// read as overlap.
	tl := capTimeline([][][3]float64{
		{{0, 1, 100}, {2, 3, 100}},
		{{1, 2, 100}},
	})
	if vs := capViolations(tl, 100); len(vs) != 0 {
		t.Errorf("serialized transfers at capacity flagged: %v", vs)
	}
}

func TestLinkCapacityConcurrentWithinBudget(t *testing.T) {
	// Two concurrent half-rate transfers sum to the capacity exactly.
	tl := capTimeline([][][3]float64{
		{{0, 2, 100}},
		{{0, 2, 100}},
	})
	if vs := capViolations(tl, 100); len(vs) != 0 {
		t.Errorf("two half-rate transfers within capacity flagged: %v", vs)
	}
}

func TestLinkCapacityFlagsOversubscription(t *testing.T) {
	// Two overlapping full-rate transfers: the instant [1,2) carries 2×
	// the capacity.
	tl := capTimeline([][][3]float64{
		{{0, 2, 200}},
		{{1, 3, 200}},
	})
	vs := capViolations(tl, 100)
	if len(vs) != 1 {
		t.Fatalf("oversubscribed link produced %d violations, want 1: %v", len(vs), vs)
	}
}

func TestLinkCapacityFlagsInstantTransfer(t *testing.T) {
	// A zero-duration span carrying data is an infinite-rate transfer.
	tl := capTimeline([][][3]float64{{{1, 1, 64}}})
	vs := capViolations(tl, 1e12)
	if len(vs) != 1 {
		t.Fatalf("instantaneous transfer produced %d violations, want 1: %v", len(vs), vs)
	}
	if vs[0].Worker != 0 || vs[0].Task != 0 {
		t.Errorf("violation misattributed: %+v", vs[0])
	}
}

func TestLinkCapacityZeroSkipsCheck(t *testing.T) {
	tl := capTimeline([][][3]float64{{{1, 1, 64}}, {{0, 1, 1e9}}})
	if vs := capViolations(tl, 0); len(vs) != 0 {
		t.Errorf("disabled capacity check still flagged: %v", vs)
	}
}

func TestCommAndOverlapTimes(t *testing.T) {
	tl := New(2)
	// Worker 0: comm [0,2), compute [1,4) — 1s of hidden comm.
	tl.Add(0, Span{Kind: Comm, Start: 0, End: 2, Data: 10})
	tl.Add(0, Span{Kind: Compute, Start: 1, End: 4, Work: 5})
	// Worker 1: comm [0,1) then compute [1,2) — no overlap.
	tl.Add(1, Span{Kind: Comm, Start: 0, End: 1, Data: 10})
	tl.Add(1, Span{Kind: Compute, Start: 1, End: 2, Work: 5})

	comm := tl.CommTimes()
	if comm[0] != 2 || comm[1] != 1 {
		t.Errorf("CommTimes = %v, want [2 1]", comm)
	}
	ov := tl.OverlapTimes()
	if math.Abs(ov[0]-1) > 1e-12 || ov[1] != 0 {
		t.Errorf("OverlapTimes = %v, want [1 0]", ov)
	}
}

// TestLiveConcurrentPrefetchPattern hammers one Live recorder with the
// access pattern of the runtime's prefetch goroutines — comm spans and
// markers racing in from transfer goroutines while Now is read
// concurrently — and is meaningful under -race (CI's race job).
func TestLiveConcurrentPrefetchPattern(t *testing.T) {
	const workers, perWorker = 8, 50
	l := NewLive(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				t0 := l.Now()
				l.Add(w, Span{Kind: Comm, Start: t0, End: l.Now(), Data: 1, Task: i})
				l.Mark(Marker{Kind: MarkDrop, Worker: w, Time: l.Now()})
			}
		}(w)
	}
	wg.Wait()
	tl := l.Timeline()
	total := 0
	for _, spans := range tl.Spans {
		total += len(spans)
	}
	if total != workers*perWorker {
		t.Errorf("recorded %d spans, want %d", total, workers*perWorker)
	}
	if len(tl.Marks) != workers*perWorker {
		t.Errorf("recorded %d marks, want %d", len(tl.Marks), workers*perWorker)
	}
	if vs := Check(tl, nil); len(vs) != 0 {
		t.Errorf("concurrent recording produced violations: %v", vs)
	}
}
