package faults

import (
	"fmt"
	"math"

	"nlfl/internal/platform"
	"nlfl/internal/stats"
)

// Kind enumerates the fault event types.
type Kind int

// Fault kinds.
const (
	// Crash takes the worker down at Time, permanently.
	Crash Kind = iota
	// Transient takes the worker down at Time and brings it back at
	// Until; whatever it was running is lost.
	Transient
	// Straggler multiplies the worker's compute speed by Factor on
	// [Time, Until) — Factor < 1 slows it down, 0 is invalid (use
	// Transient for an outage).
	Straggler
	// LinkSlow multiplies the worker's incoming bandwidth by Factor on
	// [Time, Until).
	LinkSlow
	// LinkDrop makes transfers to the worker that start inside
	// [Time, Until) fail with probability DropProb (seeded, see
	// Scenario.Seed). The transfer still occupies the link for its full
	// duration before the loss is noticed.
	LinkDrop
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Transient:
		return "transient"
	case Straggler:
		return "straggler"
	case LinkSlow:
		return "link-slow"
	case LinkDrop:
		return "link-drop"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one injected fault.
type Event struct {
	Kind   Kind
	Worker int
	// Time is when the fault begins.
	Time float64
	// Until ends windowed faults (Transient recovery time, Straggler /
	// LinkSlow / LinkDrop window end). Ignored for Crash.
	Until float64
	// Factor is the speed or bandwidth multiplier (Straggler, LinkSlow).
	Factor float64
	// DropProb is the per-transfer loss probability (LinkDrop).
	DropProb float64
}

// Scenario is a deterministic, seedable fault timeline.
type Scenario struct {
	// Events lists the injected faults in any order.
	Events []Event
	// Seed drives every stochastic decision made while executing the
	// scenario (currently: LinkDrop coin flips). Two runs with equal
	// scenarios produce identical timelines.
	Seed int64
}

// Validate checks the scenario against a p-worker platform.
func (s Scenario) Validate(p int) error {
	for i, e := range s.Events {
		if e.Worker < 0 || e.Worker >= p {
			return fmt.Errorf("faults: event %d targets unknown worker %d", i, e.Worker)
		}
		if e.Time < 0 || math.IsNaN(e.Time) || math.IsInf(e.Time, 0) {
			return fmt.Errorf("faults: event %d starts at invalid time %v", i, e.Time)
		}
		switch e.Kind {
		case Crash:
		case Transient:
			if e.Until <= e.Time {
				return fmt.Errorf("faults: event %d recovers at %v, not after %v", i, e.Until, e.Time)
			}
		case Straggler:
			if e.Until <= e.Time {
				return fmt.Errorf("faults: event %d window [%v,%v) is empty", i, e.Time, e.Until)
			}
			if e.Factor <= 0 || math.IsNaN(e.Factor) {
				return fmt.Errorf("faults: event %d straggler factor %v must be positive (use Transient for an outage)", i, e.Factor)
			}
		case LinkSlow:
			if e.Until <= e.Time {
				return fmt.Errorf("faults: event %d window [%v,%v) is empty", i, e.Time, e.Until)
			}
			if e.Factor <= 0 || math.IsNaN(e.Factor) {
				return fmt.Errorf("faults: event %d link factor %v must be positive", i, e.Factor)
			}
		case LinkDrop:
			if e.Until <= e.Time {
				return fmt.Errorf("faults: event %d window [%v,%v) is empty", i, e.Time, e.Until)
			}
			if e.DropProb < 0 || e.DropProb > 1 || math.IsNaN(e.DropProb) {
				return fmt.Errorf("faults: event %d drop probability %v outside [0,1]", i, e.DropProb)
			}
		default:
			return fmt.Errorf("faults: event %d has unknown kind %d", i, int(e.Kind))
		}
	}
	return nil
}

// Availability compiles the deterministic part of the scenario (everything
// but LinkDrop coin flips) into a platform.Availability for time-varying
// capacity queries.
func (s Scenario) Availability(p int) (*platform.Availability, error) {
	if err := s.Validate(p); err != nil {
		return nil, err
	}
	a := platform.NewAvailability(p)
	for _, e := range s.Events {
		var err error
		switch e.Kind {
		case Crash:
			err = a.AddSpeedWindow(e.Worker, platform.Window{Start: e.Time, End: math.Inf(1), Factor: 0})
		case Transient:
			err = a.AddSpeedWindow(e.Worker, platform.Window{Start: e.Time, End: e.Until, Factor: 0})
		case Straggler:
			err = a.AddSpeedWindow(e.Worker, platform.Window{Start: e.Time, End: e.Until, Factor: e.Factor})
		case LinkSlow:
			err = a.AddBandwidthWindow(e.Worker, platform.Window{Start: e.Time, End: e.Until, Factor: e.Factor})
		case LinkDrop:
			// Stochastic: resolved per transfer by the Injector.
		}
		if err != nil {
			return nil, err
		}
	}
	return a, nil
}

// CrashCount returns the number of permanent crashes in the scenario
// (distinct workers; duplicate crashes of one worker count once).
func (s Scenario) CrashCount() int {
	seen := map[int]bool{}
	for _, e := range s.Events {
		if e.Kind == Crash {
			seen[e.Worker] = true
		}
	}
	return len(seen)
}

// SingleCrash builds the simplest scenario: worker w dies at time t.
func SingleCrash(w int, t float64) Scenario {
	return Scenario{Events: []Event{{Kind: Crash, Worker: w, Time: t}}}
}

// RandomCrashes kills k distinct workers of a p-worker platform at
// uniform random times in (0, horizon), leaving at least one survivor
// (k < p required). Identical seeds yield identical victims and times.
func RandomCrashes(p, k int, horizon float64, seed int64) (Scenario, error) {
	if k < 0 || k >= p {
		return Scenario{}, fmt.Errorf("faults: cannot crash %d of %d workers (need at least one survivor)", k, p)
	}
	if horizon <= 0 {
		return Scenario{}, fmt.Errorf("faults: horizon %v must be positive", horizon)
	}
	r := stats.NewRNG(seed)
	victims := r.Perm(p)[:k]
	sc := Scenario{Seed: seed}
	for _, w := range victims {
		t := horizon * (0.05 + 0.9*r.Float64()) // keep crashes strictly inside the run
		sc.Events = append(sc.Events, Event{Kind: Crash, Worker: w, Time: t})
	}
	return sc, nil
}

// RandomStragglers slows k distinct workers to factor× nominal speed over
// [start, start+dur), choosing victims with the given seed.
func RandomStragglers(p, k int, factor, start, dur float64, seed int64) (Scenario, error) {
	if k < 0 || k > p {
		return Scenario{}, fmt.Errorf("faults: cannot slow %d of %d workers", k, p)
	}
	if factor <= 0 || dur <= 0 || start < 0 {
		return Scenario{}, fmt.Errorf("faults: invalid straggler parameters (factor=%v start=%v dur=%v)", factor, start, dur)
	}
	r := stats.NewRNG(seed)
	sc := Scenario{Seed: seed}
	for _, w := range r.Perm(p)[:k] {
		sc.Events = append(sc.Events, Event{Kind: Straggler, Worker: w, Time: start, Until: start + dur, Factor: factor})
	}
	return sc, nil
}

// FlakyLinks makes k distinct workers' links drop transfers with
// probability dropProb over [start, start+dur).
func FlakyLinks(p, k int, dropProb, start, dur float64, seed int64) (Scenario, error) {
	if k < 0 || k > p {
		return Scenario{}, fmt.Errorf("faults: cannot degrade %d of %d links", k, p)
	}
	if dropProb < 0 || dropProb > 1 || dur <= 0 || start < 0 {
		return Scenario{}, fmt.Errorf("faults: invalid flaky-link parameters (prob=%v start=%v dur=%v)", dropProb, start, dur)
	}
	r := stats.NewRNG(seed)
	sc := Scenario{Seed: seed}
	for _, w := range r.Perm(p)[:k] {
		sc.Events = append(sc.Events, Event{Kind: LinkDrop, Worker: w, Time: start, Until: start + dur, DropProb: dropProb})
	}
	return sc, nil
}
