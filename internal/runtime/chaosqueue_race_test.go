package runtime

import (
	"sync"
	"testing"
	"time"
)

// TestChaosQueueRevocationSpeculationRace stresses the exactly-once
// guarantee at its sharpest corner: worker 0 grabs leases and goes
// silent (a crash with work in flight), a reclaimer revokes its leases
// and re-plans them onto survivors — concurrently with the survivors
// speculatively re-issuing those same leases and racing commits. Every
// interleaving must commit each output cell exactly once: a lease either
// keeps a surviving speculative holder or is re-planned, never both.
func TestChaosQueueRevocationSpeculationRace(t *testing.T) {
	const (
		workers = 4
		n       = 64
		iters   = 30
	)
	speeds := []float64{1, 2, 3, 4}
	for iter := 0; iter < iters; iter++ {
		// Half the domain owned by worker 0 (its private backlog is what
		// reclaim re-plans), half ownerless in the shared shards.
		grid, err := GridChunks(n, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i := range grid {
			if i%2 == 0 {
				grid[i].Owner = 0
			}
		}
		cq := newChaosQueue(grid, workers, 1, 1e-9)
		start := time.Now()
		now := func() float64 { return time.Since(start).Seconds() }

		var mu sync.Mutex
		var wonChunks []Chunk

		var wg sync.WaitGroup
		// Worker 0: lease greedily, commit nothing, stop — in-flight work
		// that only revocation or speculation can recover.
		wg.Add(1)
		go func() {
			defer wg.Done()
			deadline := time.Now().Add(time.Millisecond)
			for time.Now().Before(deadline) {
				if _, st := cq.next(0, now()); st == queueDone {
					return
				}
			}
		}()
		// The reclaimer races the survivors' speculation on those leases.
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(300 * time.Microsecond)
			replan := func(c Chunk) []Chunk {
				if c.Owner < 0 {
					return []Chunk{c}
				}
				var owners []int
				var ss []float64
				for v, dead := range cq.dead {
					if !dead {
						owners = append(owners, v)
						ss = append(ss, speeds[v])
					}
				}
				return replanOwnedChunk(c, owners, ss)
			}
			if _, _, over := cq.reclaim(0, 100, replan); over != nil {
				t.Errorf("unexpected budget exhaustion on task %d", over.Task)
			}
		}()
		// Survivors: drain the queue, speculating on stale leases.
		for w := 1; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					c, st := cq.next(w, now())
					switch st {
					case queueDone:
						return
					case queueWait:
						time.Sleep(20 * time.Microsecond)
					case queueGot:
						if won, _ := cq.commit(c.Task, w); won {
							mu.Lock()
							wonChunks = append(wonChunks, c)
							mu.Unlock()
						}
					}
				}
			}()
		}
		wg.Wait()

		// Exactly-once: the winning chunks tile the domain with no cell
		// committed twice and none lost.
		seen := make([]int, n*n)
		for _, c := range wonChunks {
			for i := c.RowLo; i < c.RowHi; i++ {
				for k := c.ColLo; k < c.ColHi; k++ {
					seen[i*n+k]++
				}
			}
		}
		for idx, cnt := range seen {
			if cnt != 1 {
				t.Fatalf("iter %d: cell (%d,%d) committed %d times", iter, idx/n, idx%n, cnt)
			}
		}
	}
}
