package mapreduce_test

import (
	"fmt"

	"nlfl/internal/mapreduce"
)

// WordCount: the canonical linear workload MapReduce is built for.
func ExampleWordCount() {
	out, _, _ := mapreduce.WordCount([]string{"a b a", "b a"}, 2, 2)
	fmt.Println(out["a"], out["b"])
	// Output: 3 2
}
