package main

import (
	"fmt"
	"os"

	"nlfl/internal/dessim"
	"nlfl/internal/dlt"
	"nlfl/internal/faults"
	"nlfl/internal/mapreduce"
	"nlfl/internal/platform"
	"nlfl/internal/samplesort"
	"nlfl/internal/stats"
	"nlfl/internal/trace"
)

// runTrace executes one simulator run, audits its structured trace with
// the invariant oracle, and renders it — ASCII Gantt on stdout, optional
// Chrome trace_event JSON (chrome://tracing, ui.perfetto.dev) on disk.
func runTrace(args []string) error {
	fs := newFlagSet("trace")
	executor := fs.String("executor", "resilient", "executor to trace: resilient, single-round, demand, dlt or sort")
	scenario := fs.String("scenario", "none", "fault scenario (resilient/single-round only): none, crash, straggler or flaky-link")
	p := fs.Int("p", 4, "number of workers")
	tasks := fs.Int("tasks", 16, "task/chunk pool size")
	dist := fs.String("dist", "uniform", "speed profile")
	seed := fs.Int64("seed", 1, "random seed (identical seeds reproduce identical traces)")
	width := fs.Int("w", 72, "gantt chart width in columns")
	out := fs.String("out", "", "optional path for the Chrome trace_event JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	profile, err := platform.ParseProfile(*dist)
	if err != nil {
		return err
	}
	if *p < 2 || *tasks < 1 {
		return fmt.Errorf("need ≥ 2 workers and ≥ 1 task, got p=%d tasks=%d", *p, *tasks)
	}
	pl, err := platform.Generate(*p, profile.Distribution(0), stats.NewRNG(*seed))
	if err != nil {
		return err
	}

	var tr *trace.Timeline
	var exp *trace.Expect
	switch *executor {
	case "resilient":
		tr, exp, err = traceResilient(pl, *tasks, *scenario, *seed)
	case "single-round":
		tr, exp, err = traceSingleRound(pl, *tasks, *scenario, *seed)
	case "demand":
		tr, exp, err = traceDemand(pl, *tasks, *scenario)
	case "dlt":
		tr, exp, err = traceDLT(pl, *tasks, *scenario)
	case "sort":
		tr, exp, err = traceSort(pl, *tasks, *scenario)
	default:
		return fmt.Errorf("unknown executor %q (want resilient, single-round, demand, dlt or sort)", *executor)
	}
	if err != nil {
		return err
	}

	fmt.Printf("%s executor, %d workers (%s speeds, seed %d), %d tasks, scenario %s:\n\n",
		*executor, *p, profile, *seed, *tasks, *scenario)
	fmt.Print(tr.Gantt(*width))
	fmt.Println("\n  -  transfer   %  dropped   #  compute   w  wasted   x  killed   !  fault")

	m := trace.MetricsOf(tr)
	fmt.Printf("\nmakespan     %10.4f    comm volume %10.2f    spans %6d\n", m.Makespan, m.CommVolume, m.Spans)
	fmt.Printf("useful work  %10.2f    wasted work %10.2f    lost  %6.2f\n", m.UsefulWork, m.WastedWork, m.LostWork)
	fmt.Printf("compute time %10.4f    comm time   %10.4f    idle  %6.4g\n", m.ComputeTime, m.CommTime, m.IdleTime)
	fmt.Printf("utilization  %10.3f    waste frac  %10.3f    faults %5d\n", m.Utilization, m.WastedWorkFraction, m.Faults)

	if err := trace.Must(trace.Check(tr, exp)); err != nil {
		return err
	}
	fmt.Printf("\ninvariants: ok (%d spans checked)\n", m.Spans)

	if *out != "" {
		b, err := tr.ChromeTrace()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, b, 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", *out)
	}
	return nil
}

// traceScenario builds the named fault scenario, scaled to the fault-free
// makespan so faults land mid-flight.
func traceScenario(name string, p int, makespan float64, seed int64) (faults.Scenario, error) {
	switch name {
	case "none":
		return faults.Scenario{}, nil
	case "crash":
		k := 1
		if p > 4 {
			k = 2
		}
		return faults.RandomCrashes(p, k, 0.6*makespan, seed)
	case "straggler":
		return faults.RandomStragglers(p, 1, 0.05, 0.2*makespan, 10*makespan, seed)
	case "flaky-link":
		return faults.FlakyLinks(p, 1, 0.7, 0, 0.8*makespan, seed)
	default:
		return faults.Scenario{}, fmt.Errorf("unknown scenario %q (want none, crash, straggler or flaky-link)", name)
	}
}

// rejectScenario refuses fault flags on fault-free executors.
func rejectScenario(name, executor string) error {
	if name != "none" {
		return fmt.Errorf("executor %q models no faults; -scenario only applies to resilient and single-round", executor)
	}
	return nil
}

func tracePool(tasks int) ([]dessim.Task, float64, float64) {
	pool := make([]dessim.Task, tasks)
	totalData, totalWork := 0.0, 0.0
	for i := range pool {
		pool[i] = dessim.Task{Data: 1, Work: 2}
		totalData++
		totalWork += 2
	}
	return pool, totalData, totalWork
}

func traceResilient(pl *platform.Platform, tasks int, scenario string, seed int64) (*trace.Timeline, *trace.Expect, error) {
	pool, _, totalWork := tracePool(tasks)
	base, err := faults.RunResilientDemandDriven(pl, pool, faults.Scenario{}, faults.ResilientOptions{})
	if err != nil {
		return nil, nil, err
	}
	sc, err := traceScenario(scenario, pl.P(), base.Makespan, seed)
	if err != nil {
		return nil, nil, err
	}
	rep, err := faults.RunResilientDemandDriven(pl, pool, sc, faults.ResilientOptions{Speculate: scenario == "straggler"})
	if err != nil {
		return nil, nil, err
	}
	return rep.Trace, &trace.Expect{
		HasWork:       true,
		TotalWork:     totalWork,
		ProcessedWork: totalWork,
		LostWork:      rep.LostWork,
		WastedWork:    rep.WastedWork,
		HasComm:       true,
		ShippedData:   rep.DataShipped,
	}, nil
}

func traceSingleRound(pl *platform.Platform, tasks int, scenario string, seed int64) (*trace.Timeline, *trace.Expect, error) {
	pool, totalData, totalWork := tracePool(tasks)
	base, err := faults.RunResilientDemandDriven(pl, pool, faults.Scenario{}, faults.ResilientOptions{})
	if err != nil {
		return nil, nil, err
	}
	sc, err := traceScenario(scenario, pl.P(), base.Makespan, seed)
	if err != nil {
		return nil, nil, err
	}
	chunks := faults.LinearDLTChunks(pl, totalData, totalWork)
	rep, err := faults.RunSingleRoundUnderFaults(pl, chunks, sc)
	if err != nil {
		return nil, nil, err
	}
	return rep.Trace, &trace.Expect{
		HasWork:         true,
		TotalWork:       totalWork,
		ProcessedWork:   rep.CompletedWork,
		UnprocessedWork: rep.LostWork,
		LostWork:        rep.LostWork,
	}, nil
}

func traceDemand(pl *platform.Platform, tasks int, scenario string) (*trace.Timeline, *trace.Expect, error) {
	if err := rejectScenario(scenario, "demand"); err != nil {
		return nil, nil, err
	}
	pool, err := mapreduce.UniformTasks(tasks, 1, 2)
	if err != nil {
		return nil, nil, err
	}
	res, err := mapreduce.Schedule(pl, pool, true)
	if err != nil {
		return nil, nil, err
	}
	shipped := 0.0
	for _, d := range res.DataPerWorker {
		shipped += d
	}
	totalWork := 2 * float64(tasks)
	return res.Trace, &trace.Expect{
		HasWork:       true,
		TotalWork:     totalWork,
		ProcessedWork: totalWork,
		WastedWork:    res.WastedWork,
		HasComm:       true,
		ShippedData:   shipped,
	}, nil
}

func traceDLT(pl *platform.Platform, tasks int, scenario string) (*trace.Timeline, *trace.Expect, error) {
	if err := rejectScenario(scenario, "dlt"); err != nil {
		return nil, nil, err
	}
	const n = 100.0
	a, err := dlt.OptimalParallel(pl, n)
	if err != nil {
		return nil, nil, err
	}
	rounds := tasks / pl.P()
	if rounds < 1 {
		rounds = 1
	}
	chunks, err := dlt.MultiRoundUniform(a, n, rounds)
	if err != nil {
		return nil, nil, err
	}
	tr, err := dlt.SimulatedTimeline(pl, chunks, dessim.ParallelLinks)
	if err != nil {
		return nil, nil, err
	}
	return tr, &trace.Expect{
		HasWork:       true,
		TotalWork:     n,
		ProcessedWork: n,
		HasComm:       true,
		ShippedData:   n,
	}, nil
}

func traceSort(pl *platform.Platform, tasks int, scenario string) (*trace.Timeline, *trace.Expect, error) {
	if err := rejectScenario(scenario, "sort"); err != nil {
		return nil, nil, err
	}
	n := tasks * 1024
	cost, err := samplesort.SimulateDistributed(pl, n, samplesort.Config{}, dessim.ParallelLinks)
	if err != nil {
		return nil, nil, err
	}
	// The bucket shipments are the whole input, once each.
	return cost.Trace, &trace.Expect{
		HasComm:     true,
		ShippedData: float64(n),
	}, nil
}
