package partition

import (
	"strings"
	"testing"
)

func TestASCIIRendering(t *testing.T) {
	p, err := PeriSum([]float64{1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	out := p.ASCII(40, 10)
	if strings.Contains(out, "?") {
		t.Errorf("unowned cells in rendering:\n%s", out)
	}
	for _, g := range []string{"0", "1", "2"} {
		if !strings.Contains(out, g) {
			t.Errorf("glyph %s missing:\n%s", g, out)
		}
	}
	if !strings.Contains(out, "half-perimeter") {
		t.Error("legend missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// border + 10 rows + border + 3 legend lines.
	if len(lines) != 15 {
		t.Errorf("expected 15 lines, got %d", len(lines))
	}
}

func TestASCIIDefaults(t *testing.T) {
	p, err := PeriSum([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	out := p.ASCII(0, 0)
	if !strings.Contains(out, "0") {
		t.Errorf("default-size rendering broken:\n%s", out)
	}
}

func TestASCIIAreaProportions(t *testing.T) {
	// A 3:1 split: the bigger glyph should cover ≈ 3× the cells.
	p, err := PeriSum([]float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	out := p.ASCII(40, 20)
	big := strings.Count(out, "0") - 1 // minus the legend occurrence
	small := strings.Count(out, "1") - 1
	ratio := float64(big) / float64(small)
	if ratio < 2.5 || ratio > 3.6 {
		t.Errorf("glyph ratio = %v, want ≈3", ratio)
	}
}

func TestASCIIGlyphCycling(t *testing.T) {
	// More rectangles than glyphs must not panic and must reuse glyphs.
	areas := make([]float64, len(glyphs)+5)
	for i := range areas {
		areas[i] = 1
	}
	p, err := PeriSum(areas)
	if err != nil {
		t.Fatal(err)
	}
	if out := p.ASCII(30, 10); out == "" {
		t.Error("empty rendering")
	}
}
