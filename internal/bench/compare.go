package bench

import (
	"fmt"
	"sort"
	"strings"

	"nlfl/internal/results"
)

// KernelDelta is one before/after row of a kernel comparison: the same
// (kernel, n, workers) configuration measured in two BENCH_kernels
// artifacts.
type KernelDelta struct {
	Kernel  string
	N       int
	Workers int
	// OldSeconds/NewSeconds are the best-of timings; zero on the side
	// where the configuration is missing.
	OldSeconds, NewSeconds float64
	OldGFLOPS, NewGFLOPS   float64
	// Speedup is OldSeconds/NewSeconds (>1 means the new file is faster);
	// 0 when either side is missing.
	Speedup float64
}

// CompareKernels matches the two files' entries by (kernel, n, workers)
// and returns one delta per configuration present in either, ordered by
// kernel name, then n, then workers. Configurations present on only one
// side appear with the other side zeroed, so a comparison never silently
// drops a vanished or newly added kernel.
func CompareKernels(before, after results.KernelBenchFile) []KernelDelta {
	type key struct {
		kernel  string
		n, wkrs int
	}
	rows := map[key]*KernelDelta{}
	at := func(k key) *KernelDelta {
		if d, ok := rows[k]; ok {
			return d
		}
		d := &KernelDelta{Kernel: k.kernel, N: k.n, Workers: k.wkrs}
		rows[k] = d
		return d
	}
	for _, e := range before.Entries {
		d := at(key{e.Kernel, e.N, e.Workers})
		d.OldSeconds, d.OldGFLOPS = e.Seconds, e.GFLOPS
	}
	for _, e := range after.Entries {
		d := at(key{e.Kernel, e.N, e.Workers})
		d.NewSeconds, d.NewGFLOPS = e.Seconds, e.GFLOPS
	}
	out := make([]KernelDelta, 0, len(rows))
	for _, d := range rows {
		if d.OldSeconds > 0 && d.NewSeconds > 0 {
			d.Speedup = d.OldSeconds / d.NewSeconds
		}
		out = append(out, *d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kernel != out[j].Kernel {
			return out[i].Kernel < out[j].Kernel
		}
		if out[i].N != out[j].N {
			return out[i].N < out[j].N
		}
		return out[i].Workers < out[j].Workers
	})
	return out
}

// FormatKernelDeltas renders the comparison as a benchstat-style table:
// one row per configuration, old and new timings side by side, and the
// relative change in both time and throughput. Missing sides render as
// "-" with the delta column reading "added"/"removed".
func FormatKernelDeltas(deltas []KernelDelta) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %6s %5s │ %12s %12s %8s │ %10s %10s %8s\n",
		"kernel", "n", "wkrs", "old sec", "new sec", "delta", "old GF/s", "new GF/s", "ratio")
	for _, d := range deltas {
		name := d.Kernel
		switch {
		case d.OldSeconds == 0:
			fmt.Fprintf(&sb, "%-16s %6d %5d │ %12s %12.6f %8s │ %10s %10.3f %8s\n",
				name, d.N, d.Workers, "-", d.NewSeconds, "added", "-", d.NewGFLOPS, "")
		case d.NewSeconds == 0:
			fmt.Fprintf(&sb, "%-16s %6d %5d │ %12.6f %12s %8s │ %10.3f %10s %8s\n",
				name, d.N, d.Workers, d.OldSeconds, "-", "removed", d.OldGFLOPS, "-", "")
		default:
			pct := (d.NewSeconds - d.OldSeconds) / d.OldSeconds * 100
			fmt.Fprintf(&sb, "%-16s %6d %5d │ %12.6f %12.6f %+7.1f%% │ %10.3f %10.3f %7.2fx\n",
				name, d.N, d.Workers, d.OldSeconds, d.NewSeconds, pct, d.OldGFLOPS, d.NewGFLOPS, d.Speedup)
		}
	}
	return sb.String()
}
