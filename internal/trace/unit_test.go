package trace

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"nlfl/internal/dessim"
)

func TestStringers(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{Comm.String(), "comm"},
		{Compute.String(), "compute"},
		{SpanKind(9).String(), "kind(9)"},
		{OK.String(), "ok"},
		{Dropped.String(), "dropped"},
		{Killed.String(), "killed"},
		{Wasted.String(), "wasted"},
		{Outcome(9).String(), "outcome(9)"},
		{MarkCrash.String(), "crash"},
		{MarkRecover.String(), "recover"},
		{MarkDrop.String(), "drop"},
		{MarkerKind(9).String(), "marker(9)"},
		{BadSpan.String(), "bad-span"},
		{OverlapCompute.String(), "overlap-compute"},
		{OverlapComm.String(), "overlap-comm"},
		{NonMonotone.String(), "non-monotone"},
		{WorkConservation.String(), "work-conservation"},
		{CommVolume.String(), "comm-volume"},
		{ImbalanceExceeded.String(), "imbalance"},
		{ViolationKind(99).String(), "violation(99)"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q want %q", c.got, c.want)
		}
	}
}

func TestTimelineAccounting(t *testing.T) {
	tl := New(2)
	tl.Add(0, Span{Kind: Comm, Start: 0, End: 1, Data: 4, Task: 0})
	tl.Add(0, Span{Kind: Compute, Start: 1, End: 3, Work: 8, Task: 0})
	tl.Add(1, Span{Kind: Comm, Start: 0, End: 2, Data: 4, Task: 1, Outcome: Dropped})
	tl.Add(1, Span{Kind: Comm, Start: 2, End: 4, Data: 4, Task: 1})
	tl.Add(1, Span{Kind: Compute, Start: 4, End: 6, Work: 6, Task: 1})
	tl.Add(1, Span{Kind: Compute, Start: 6, End: 7, Work: 2, Task: 2, Outcome: Wasted})
	tl.Add(1, Span{Kind: Compute, Start: 7, End: 8, Work: 1, Task: 3, Outcome: Killed})
	tl.Mark(Marker{Kind: MarkDrop, Worker: 1, Time: 2})

	if got := tl.Workers(); got != 2 {
		t.Errorf("Workers = %d", got)
	}
	if got := tl.CommVolume(); got != 12 {
		t.Errorf("CommVolume = %v, want 12 (dropped shipments count)", got)
	}
	if got := tl.UsefulWork(); got != 14 {
		t.Errorf("UsefulWork = %v, want 14", got)
	}
	if got := tl.WastedWork(); got != 2 {
		t.Errorf("WastedWork = %v", got)
	}
	if got := tl.LostWork(); got != 1 {
		t.Errorf("LostWork = %v", got)
	}
	if tl.Makespan != 8 {
		t.Errorf("Makespan = %v", tl.Makespan)
	}
	ct := tl.ComputeTimes()
	if ct[0] != 2 || ct[1] != 4 {
		t.Errorf("ComputeTimes = %v", ct)
	}
	if got, want := tl.Imbalance(), 1.0; got != want {
		t.Errorf("Imbalance = %v, want %v", got, want)
	}
	if got := tl.Utilization(); got != 6.0/16 {
		t.Errorf("Utilization = %v", got)
	}

	tl.Shift(1.5)
	if tl.Makespan != 9.5 || tl.Spans[0][0].Start != 1.5 || tl.Marks[0].Time != 3.5 {
		t.Errorf("Shift misplaced: makespan %v span0 %v mark %v", tl.Makespan, tl.Spans[0][0], tl.Marks[0])
	}
}

func TestImbalanceEdges(t *testing.T) {
	if got := New(2).Imbalance(); got != 0 {
		t.Errorf("empty imbalance = %v", got)
	}
	tl := New(2)
	tl.Add(0, Span{Kind: Compute, Start: 0, End: 1, Work: 1})
	if got := tl.Imbalance(); !math.IsInf(got, 1) {
		t.Errorf("one-idle-worker imbalance = %v, want +Inf", got)
	}
	if got := New(0).Utilization(); got != 0 {
		t.Errorf("empty utilization = %v", got)
	}
	if New(-3).Workers() != 0 {
		t.Error("negative worker count should clamp to 0")
	}
}

func TestFromDessim(t *testing.T) {
	d := dessim.NewTimeline(2)
	d.Add(0, dessim.Interval{Kind: dessim.Receive, Start: 0, End: 1, Data: 3, Task: 0})
	d.Add(0, dessim.Interval{Kind: dessim.Compute, Start: 1, End: 2, Work: 5, Task: 0})
	tl := FromDessim(d)
	if tl.Workers() != 2 || len(tl.Spans[0]) != 2 {
		t.Fatalf("bad conversion: %+v", tl)
	}
	if tl.Spans[0][0].Kind != Comm || tl.Spans[0][1].Kind != Compute {
		t.Errorf("kinds: %+v", tl.Spans[0])
	}
	if tl.Spans[0][0].Outcome != OK {
		t.Errorf("dessim intervals should convert to OK spans")
	}
	if tl.CommVolume() != 3 || tl.UsefulWork() != 5 {
		t.Errorf("volumes: comm %v work %v", tl.CommVolume(), tl.UsefulWork())
	}
}

func TestCheckStructural(t *testing.T) {
	find := func(vs []Violation, k ViolationKind) bool {
		for _, v := range vs {
			if v.Kind == k {
				return true
			}
		}
		return false
	}

	t.Run("clean", func(t *testing.T) {
		tl := New(1)
		tl.Add(0, Span{Kind: Comm, Start: 0, End: 1, Data: 1})
		tl.Add(0, Span{Kind: Compute, Start: 0.5, End: 2, Work: 1}) // comm/compute overlap is pipelining, legal
		if vs := Check(tl, nil); len(vs) != 0 {
			t.Errorf("clean timeline flagged: %v", vs)
		}
	})
	t.Run("overlap-compute", func(t *testing.T) {
		tl := New(1)
		tl.Add(0, Span{Kind: Compute, Start: 0, End: 2, Work: 1})
		tl.Add(0, Span{Kind: Compute, Start: 1, End: 3, Work: 1})
		if vs := Check(tl, nil); !find(vs, OverlapCompute) {
			t.Errorf("missed compute overlap: %v", vs)
		}
	})
	t.Run("overlap-comm", func(t *testing.T) {
		tl := New(1)
		tl.Add(0, Span{Kind: Comm, Start: 0, End: 2, Data: 1})
		tl.Add(0, Span{Kind: Comm, Start: 1, End: 3, Data: 1})
		if vs := Check(tl, nil); !find(vs, OverlapComm) {
			t.Errorf("missed comm overlap: %v", vs)
		}
	})
	t.Run("non-monotone", func(t *testing.T) {
		tl := New(1)
		tl.Add(0, Span{Kind: Compute, Start: 5, End: 6, Work: 1})
		tl.Add(0, Span{Kind: Compute, Start: 1, End: 2, Work: 1})
		if vs := Check(tl, nil); !find(vs, NonMonotone) {
			t.Errorf("missed time travel: %v", vs)
		}
	})
	t.Run("bad-span", func(t *testing.T) {
		for _, s := range []Span{
			{Kind: Compute, Start: math.NaN(), End: 1},
			{Kind: Compute, Start: 0, End: math.Inf(1)},
			{Kind: Compute, Start: -1, End: 1},
			{Kind: Compute, Start: 2, End: 1},
			{Kind: Comm, Start: 0, End: 1, Data: -1},
			{Kind: Compute, Start: 0, End: 1, Work: -1},
		} {
			tl := New(1)
			tl.Add(0, s)
			if vs := Check(tl, nil); !find(vs, BadSpan) {
				t.Errorf("span %+v not flagged: %v", s, vs)
			}
		}
	})
	t.Run("past-makespan", func(t *testing.T) {
		tl := New(1)
		tl.Add(0, Span{Kind: Compute, Start: 0, End: 3, Work: 1})
		tl.Makespan = 2 // an executor lying about its makespan
		if vs := Check(tl, nil); !find(vs, BadSpan) {
			t.Errorf("span past makespan not flagged: %v", vs)
		}
	})
	t.Run("bad-marker", func(t *testing.T) {
		tl := New(1)
		tl.Mark(Marker{Kind: MarkCrash, Worker: 0, Time: -1})
		if vs := Check(tl, nil); !find(vs, NonMonotone) {
			t.Errorf("negative marker time not flagged: %v", vs)
		}
	})
}

func TestCheckExpectations(t *testing.T) {
	mk := func() *Timeline {
		tl := New(2)
		tl.Add(0, Span{Kind: Comm, Start: 0, End: 1, Data: 5, Task: 0})
		tl.Add(0, Span{Kind: Compute, Start: 1, End: 2, Work: 10, Task: 0})
		tl.Add(1, Span{Kind: Comm, Start: 0, End: 1, Data: 5, Task: 1})
		tl.Add(1, Span{Kind: Compute, Start: 1, End: 2, Work: 10, Task: 1})
		return tl
	}
	good := &Expect{
		HasWork: true, TotalWork: 20, ProcessedWork: 20,
		HasComm: true, ShippedData: 10,
		Bound: 10, BoundKind: BoundExact, BoundName: "Comm_hom",
		ImbalanceTarget: 0.01,
	}
	if vs := Check(mk(), good); len(vs) != 0 {
		t.Fatalf("clean run flagged: %v", vs)
	}

	cases := []struct {
		name string
		exp  Expect
		want ViolationKind
	}{
		{"ledger", Expect{HasWork: true, TotalWork: 20, ProcessedWork: 15, UnprocessedWork: 5}, WorkConservation},
		{"sum", Expect{HasWork: true, TotalWork: 25, ProcessedWork: 20}, WorkConservation},
		{"wasted", Expect{HasWork: true, TotalWork: 20, ProcessedWork: 20, WastedWork: 3}, WorkConservation},
		{"shipped", Expect{HasComm: true, ShippedData: 12}, CommVolume},
		{"exact", Expect{Bound: 11, BoundKind: BoundExact}, CommVolume},
		{"upper", Expect{Bound: 9, BoundKind: BoundUpper}, CommVolume},
		{"lower", Expect{Bound: 11, BoundKind: BoundLower}, CommVolume},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			vs := Check(mk(), &c.exp)
			found := false
			for _, v := range vs {
				if v.Kind == c.want {
					found = true
				}
			}
			if !found {
				t.Errorf("want %v, got %v", c.want, vs)
			}
		})
	}

	// Traced killed work exceeding the reported lost work is a lie.
	tl := mk()
	tl.Add(0, Span{Kind: Compute, Start: 2, End: 3, Work: 4, Task: 2, Outcome: Killed})
	vs := Check(tl, &Expect{HasWork: true, TotalWork: 20, ProcessedWork: 20, LostWork: 1})
	found := false
	for _, v := range vs {
		if v.Kind == WorkConservation && strings.Contains(v.Detail, "killed") {
			found = true
		}
	}
	if !found {
		t.Errorf("over-reported killed work not flagged: %v", vs)
	}

	// Imbalance target: make worker 1 compute twice as long.
	tl2 := mk()
	tl2.Spans[1][1].End = 3
	vs2 := Check(tl2, &Expect{ImbalanceTarget: 0.01})
	found = false
	for _, v := range vs2 {
		if v.Kind == ImbalanceExceeded {
			found = true
		}
	}
	if !found {
		t.Errorf("imbalance 1.0 above 0.01 not flagged: %v", vs2)
	}
}

func TestMustAndViolationString(t *testing.T) {
	if Must(nil) != nil {
		t.Error("Must(nil) should be nil")
	}
	v := Violation{Kind: OverlapCompute, Worker: 2, Task: 7, Detail: "boom"}
	if s := v.String(); !strings.Contains(s, "overlap-compute") || !strings.Contains(s, "worker 2") || !strings.Contains(s, "task 7") {
		t.Errorf("String = %q", s)
	}
	err := Must([]Violation{v, {Kind: BadSpan, Worker: -1, Task: -1, Detail: "x"}})
	if err == nil || !strings.Contains(err.Error(), "2 invariant violation(s)") {
		t.Errorf("Must error = %v", err)
	}
}

func TestApproxEqualAndTolerance(t *testing.T) {
	if !approxEqual(1, 1+1e-12, 1e-9) {
		t.Error("tiny gap should pass")
	}
	if approxEqual(1, 1.1, 1e-9) {
		t.Error("10% gap should fail")
	}
	var nilExp *Expect
	if got := nilExp.tolerance(); got != 1e-9 {
		t.Errorf("nil tolerance = %v", got)
	}
	if got := (&Expect{Tol: 0.5}).tolerance(); got != 0.5 {
		t.Errorf("custom tolerance = %v", got)
	}
	if got := (&Expect{}).boundName(); got != "bound" {
		t.Errorf("default bound name = %q", got)
	}
}

func TestMetricsOf(t *testing.T) {
	tl := New(2)
	tl.Add(0, Span{Kind: Comm, Start: 0, End: 2, Data: 4})
	tl.Add(0, Span{Kind: Compute, Start: 1, End: 3, Work: 6}) // overlaps the comm span: busy union is 3
	tl.Add(1, Span{Kind: Compute, Start: 0, End: 1, Work: 2, Outcome: Wasted})
	m := MetricsOf(tl)
	if m.Makespan != 3 || m.Spans != 3 {
		t.Errorf("makespan %v spans %d", m.Makespan, m.Spans)
	}
	if m.CommTime != 2 || m.ComputeTime != 3 {
		t.Errorf("commTime %v computeTime %v", m.CommTime, m.ComputeTime)
	}
	if m.IdleTime != 2*3-(3+1) {
		t.Errorf("idle = %v, want 2 (union-based)", m.IdleTime)
	}
	if m.UsefulWork != 6 || m.WastedWork != 2 || m.LostWork != 0 {
		t.Errorf("work split: %+v", m)
	}
	if want := 2.0 / 8; m.WastedWorkFraction != want {
		t.Errorf("wastedWorkFraction = %v, want %v", m.WastedWorkFraction, want)
	}
	if m.Utilization != 3.0/6 {
		t.Errorf("utilization = %v", m.Utilization)
	}

	if got := MetricsOf(New(0)); got.Spans != 0 || got.IdleTime != 0 {
		t.Errorf("empty metrics: %+v", got)
	}
}

func TestUnionDuration(t *testing.T) {
	cases := []struct {
		spans []Span
		want  float64
	}{
		{nil, 0},
		{[]Span{{Start: 1, End: 1}}, 0},
		{[]Span{{Start: 0, End: 2}, {Start: 1, End: 3}}, 3},
		{[]Span{{Start: 0, End: 1}, {Start: 2, End: 3}}, 2},
		{[]Span{{Start: 2, End: 3}, {Start: 0, End: 5}}, 5},
	}
	for i, c := range cases {
		if got := unionDuration(c.spans); got != c.want {
			t.Errorf("case %d: union = %v, want %v", i, got, c.want)
		}
	}
}

func TestGantt(t *testing.T) {
	tl := New(2)
	tl.Add(0, Span{Kind: Comm, Start: 0, End: 4, Data: 1})
	tl.Add(0, Span{Kind: Compute, Start: 4, End: 8, Work: 1})
	tl.Add(1, Span{Kind: Comm, Start: 0, End: 2, Data: 1, Outcome: Dropped})
	tl.Add(1, Span{Kind: Compute, Start: 2, End: 4, Work: 1, Outcome: Wasted})
	tl.Add(1, Span{Kind: Compute, Start: 4, End: 6, Work: 1, Outcome: Killed})
	tl.Mark(Marker{Kind: MarkCrash, Worker: 1, Time: 6})
	g := tl.Gantt(40)
	for _, glyph := range []string{"-", "#", "%", "w", "x", "!", "P1", "P2", "t="} {
		if !strings.Contains(g, glyph) {
			t.Errorf("gantt missing %q:\n%s", glyph, g)
		}
	}
	if got := New(1).Gantt(40); got != "(empty timeline)\n" {
		t.Errorf("empty gantt = %q", got)
	}
	if g0 := tl.Gantt(0); !strings.Contains(g0, "P1") {
		t.Errorf("zero width should fall back to default:\n%s", g0)
	}
}

func TestChromeTrace(t *testing.T) {
	tl := New(1)
	tl.Add(0, Span{Kind: Comm, Start: 0, End: 1, Data: 2, Task: 0})
	tl.Add(0, Span{Kind: Compute, Start: 1, End: 2, Work: 3, Task: 0})
	tl.Mark(Marker{Kind: MarkCrash, Worker: 0, Time: 1.5, Note: "permanent"})
	b, err := tl.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(b) {
		t.Fatal("invalid JSON")
	}
	var f struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &f); err != nil {
		t.Fatal(err)
	}
	// 1 process meta + 1 thread meta + 2 spans + 1 marker.
	if len(f.TraceEvents) != 5 {
		t.Fatalf("got %d events", len(f.TraceEvents))
	}
	phs := map[string]int{}
	for _, e := range f.TraceEvents {
		phs[e.Ph]++
	}
	if phs["M"] != 2 || phs["X"] != 2 || phs["i"] != 1 {
		t.Errorf("event phases: %v", phs)
	}
	// Times are in microseconds: the compute span starts at 1s = 1e6 μs.
	found := false
	for _, e := range f.TraceEvents {
		if e.Ph == "X" && e.Ts == 1e6 {
			found = true
		}
	}
	if !found {
		t.Error("compute span not at ts=1e6")
	}
	// Determinism: identical timelines give identical bytes.
	b2, err := tl.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Error("ChromeTrace is not deterministic")
	}
}

func TestRecorder(t *testing.T) {
	eng := dessim.NewEngine()
	rec := NewRecorder()
	eng.SetSink(rec)
	h := eng.Schedule(2, func() {})
	eng.Schedule(1, func() {})
	h.Cancel()
	eng.Run()
	if rec.Scheduled != 2 || rec.Fired != 1 || rec.Cancelled != 1 {
		t.Errorf("counts: %+v", rec)
	}
	if vs := rec.Violations(); vs != nil {
		t.Errorf("clean run flagged: %v", vs)
	}

	// Feed the recorder an impossible sequence directly (the engine itself
	// panics on these, so simulate a buggy engine).
	bad := NewRecorder()
	bad.EventScheduled(1, 5, 3) // scheduled in the past
	bad.EventFired(1, 5)
	bad.EventFired(2, 4) // clock went backwards
	vs := bad.Violations()
	if len(vs) != 2 {
		t.Fatalf("want 2 violations, got %v", vs)
	}
	for _, v := range vs {
		if v.Kind != NonMonotone {
			t.Errorf("kind = %v", v.Kind)
		}
	}
}
