package platform

import (
	"fmt"
	"math"
	"sort"
)

// Window is one time interval during which a worker's capacity deviates
// from nominal: its speed (or bandwidth) is multiplied by Factor. Factor 0
// means the worker is down for the window; End = +Inf makes the deviation
// permanent.
type Window struct {
	Start, End float64
	Factor     float64
}

// contains reports whether t falls inside the window ([Start, End)).
func (w Window) contains(t float64) bool { return t >= w.Start && t < w.End }

// Availability is a time-varying view of a platform's capacity: per worker,
// a set of speed windows and bandwidth windows layered over the nominal
// Worker parameters. It is the bridge between the static Platform (which
// stays immutable) and fault scenarios (internal/faults), which compile
// into an Availability so that executors and re-planners can query "who is
// alive, and how fast, at time t" without knowing about fault kinds.
type Availability struct {
	p     int
	speed [][]Window // per worker, multiplicative speed windows
	bw    [][]Window // per worker, multiplicative bandwidth windows
}

// NewAvailability returns an all-nominal availability for p workers.
func NewAvailability(p int) *Availability {
	return &Availability{p: p, speed: make([][]Window, p), bw: make([][]Window, p)}
}

// P returns the number of workers covered.
func (a *Availability) P() int { return a.p }

// AddSpeedWindow layers a speed deviation onto worker w. Overlapping
// windows multiply (two 0.5× slowdowns make a 0.25× one; any down window
// zeroes the product).
func (a *Availability) AddSpeedWindow(w int, win Window) error {
	if err := a.check(w, win); err != nil {
		return err
	}
	a.speed[w] = append(a.speed[w], win)
	sortWindows(a.speed[w])
	return nil
}

// AddBandwidthWindow layers a bandwidth deviation onto worker w's incoming
// link, with the same overlap semantics as AddSpeedWindow.
func (a *Availability) AddBandwidthWindow(w int, win Window) error {
	if err := a.check(w, win); err != nil {
		return err
	}
	a.bw[w] = append(a.bw[w], win)
	sortWindows(a.bw[w])
	return nil
}

func (a *Availability) check(w int, win Window) error {
	if w < 0 || w >= a.p {
		return fmt.Errorf("platform: window targets unknown worker %d", w)
	}
	if win.Start < 0 || math.IsNaN(win.Start) {
		return fmt.Errorf("platform: window start %v invalid", win.Start)
	}
	if win.End <= win.Start {
		return fmt.Errorf("platform: window [%v,%v) is empty", win.Start, win.End)
	}
	if win.Factor < 0 || math.IsNaN(win.Factor) {
		return fmt.Errorf("platform: window factor %v invalid", win.Factor)
	}
	return nil
}

func sortWindows(ws []Window) {
	sort.SliceStable(ws, func(i, j int) bool { return ws[i].Start < ws[j].Start })
}

// SpeedFactor returns the product of all speed windows covering (w, t):
// 1 when nominal, 0 when the worker is down.
func (a *Availability) SpeedFactor(w int, t float64) float64 {
	return factorAt(a.speed[w], t)
}

// BandwidthFactor returns the product of all bandwidth windows covering
// (w, t).
func (a *Availability) BandwidthFactor(w int, t float64) float64 {
	return factorAt(a.bw[w], t)
}

func factorAt(ws []Window, t float64) float64 {
	f := 1.0
	for _, win := range ws {
		if win.contains(t) {
			f *= win.Factor
		}
	}
	return f
}

// Alive reports whether worker w has non-zero compute capacity at time t.
func (a *Availability) Alive(w int, t float64) bool {
	return a.SpeedFactor(w, t) > 0
}

// PermanentlyDownBy reports whether worker w is down from time t onwards
// (covered by zero-factor speed windows through +Inf).
func (a *Availability) PermanentlyDownBy(w int, t float64) bool {
	// The worker is permanently down iff some zero-factor window containing
	// t extends to +Inf, or a chain of zero windows covers [t, +Inf). Fault
	// scenarios only produce single +Inf windows for permanent crashes, so
	// the direct check suffices; the chain case is handled conservatively
	// by probing the latest window start.
	for _, win := range a.speed[w] {
		if win.Factor == 0 && win.contains(t) && math.IsInf(win.End, 1) {
			return true
		}
	}
	return false
}

// Survivors returns the indices of workers not permanently down by time t,
// in ascending order.
func (a *Availability) Survivors(t float64) []int {
	var out []int
	for w := 0; w < a.p; w++ {
		if !a.PermanentlyDownBy(w, t) {
			out = append(out, w)
		}
	}
	return out
}

// IntegrateWork returns the time at which `work` units complete on worker
// w when computation starts at `start` and the worker's effective speed is
// nominal·SpeedFactor(t). Piecewise-constant integration across window
// boundaries; returns +Inf if the profile starves the worker forever.
func (a *Availability) IntegrateWork(p *Platform, w int, start, work float64) float64 {
	if work <= 0 {
		return start
	}
	nominal := p.Worker(w).Speed
	bounds := a.boundaries(a.speed[w], start)
	t := start
	remaining := work
	for i := 0; ; i++ {
		var until float64 = math.Inf(1)
		if i < len(bounds) {
			until = bounds[i]
		}
		rate := nominal * factorAt(a.speed[w], t)
		if rate > 0 {
			need := remaining / rate
			if t+need <= until {
				return t + need
			}
			remaining -= rate * (until - t)
		}
		if math.IsInf(until, 1) {
			return math.Inf(1)
		}
		t = until
	}
}

// WorkBetween returns the work units worker w completes between times
// `from` and `to` under the availability profile — the inverse view of
// IntegrateWork, used to account for partial work lost when a crash
// interrupts a computation.
func (a *Availability) WorkBetween(p *Platform, w int, from, to float64) float64 {
	if to <= from {
		return 0
	}
	nominal := p.Worker(w).Speed
	bounds := a.boundaries(a.speed[w], from)
	t := from
	work := 0.0
	for i := 0; t < to; i++ {
		until := to
		if i < len(bounds) && bounds[i] < to {
			until = bounds[i]
		}
		work += nominal * factorAt(a.speed[w], t) * (until - t)
		t = until
	}
	return work
}

// boundaries lists the window edges strictly after start, ascending and
// deduplicated — the breakpoints of the piecewise-constant factor.
func (a *Availability) boundaries(ws []Window, start float64) []float64 {
	var bs []float64
	for _, win := range ws {
		for _, b := range [2]float64{win.Start, win.End} {
			if b > start && !math.IsInf(b, 1) {
				bs = append(bs, b)
			}
		}
	}
	sort.Float64s(bs)
	out := bs[:0]
	for i, b := range bs {
		if i == 0 || b != bs[i-1] {
			out = append(out, b)
		}
	}
	return out
}

// SurvivorPlatform builds the sub-platform of workers still alive from
// time t onwards, preserving nominal speeds and bandwidths. The returned
// index slice maps new worker indices to the original ones. It errors when
// every worker is permanently down.
func (a *Availability) SurvivorPlatform(p *Platform, t float64) (*Platform, []int, error) {
	if p.P() != a.p {
		return nil, nil, fmt.Errorf("platform: availability covers %d workers, platform has %d", a.p, p.P())
	}
	idx := a.Survivors(t)
	if len(idx) == 0 {
		return nil, nil, fmt.Errorf("platform: no survivors at time %v", t)
	}
	ws := make([]Worker, len(idx))
	for i, w := range idx {
		ws[i] = p.Worker(w)
	}
	np, err := New(ws)
	if err != nil {
		return nil, nil, err
	}
	return np, idx, nil
}
