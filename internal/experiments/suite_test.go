package experiments

import (
	"math"
	"testing"
)

func TestRunSuiteQuick(t *testing.T) {
	res, err := RunSuite(SuiteConfig{Trials: 5, Seed: 42, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NonLinear) == 0 || len(res.SortScaling) == 0 || len(res.Rho) == 0 {
		t.Fatal("suite missing sections")
	}
	if len(res.Fig4Homogeneous) != 2 || len(res.Fig4Uniform) != 2 || len(res.Fig4LogNormal) != 2 {
		t.Fatalf("quick fig4 sweeps wrong size: %d/%d/%d",
			len(res.Fig4Homogeneous), len(res.Fig4Uniform), len(res.Fig4LogNormal))
	}
	if len(res.Affinity) == 0 || len(res.Bottleneck) == 0 || len(res.Adaptivity) == 0 || len(res.Returns) == 0 {
		t.Fatal("extension sections missing")
	}
	h := res.Headline()
	if math.Abs(h["undone-fraction-P100-α2"]-0.99) > 1e-9 {
		t.Errorf("headline fraction = %v, want 0.99", h["undone-fraction-P100-α2"])
	}
	if h["fig4b-het-last"] < 1 || h["fig4b-het-last"] > 1.05 {
		t.Errorf("headline het ratio = %v", h["fig4b-het-last"])
	}
	if h["rho-last"] < 8 {
		t.Errorf("headline ρ(k=100) = %v, want ≈8.5", h["rho-last"])
	}
}

func TestRunSuiteDeterministic(t *testing.T) {
	a, err := RunSuite(SuiteConfig{Trials: 3, Seed: 7, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSuite(SuiteConfig{Trials: 3, Seed: 7, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Fig4Uniform[0] != b.Fig4Uniform[0] {
		t.Error("suite not deterministic")
	}
	if a.Headline()["rho-last"] != b.Headline()["rho-last"] {
		t.Error("headline not deterministic")
	}
}

func TestRunSuiteValidation(t *testing.T) {
	if _, err := RunSuite(SuiteConfig{Trials: 0}); err == nil {
		t.Error("zero trials should fail")
	}
}
