package runtime

import (
	"testing"

	"nlfl/internal/matmul"
	"nlfl/internal/stats"
	"nlfl/internal/trace"
)

// linkVectors returns deterministic test vectors of length n, warming
// the one-time tile-autotune probe so it is not charged to a timed span.
func linkVectors(n int) (a, b []float64) {
	matmul.AutotuneTile()
	r := stats.NewRNG(17)
	a = stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, n)
	b = stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, n)
	return a, b
}

// gridPlan builds a demand-driven grid plan with the exact 2·N·g volume.
func gridPlan(t *testing.T, n, grid int) *StrategyPlan {
	t.Helper()
	chunks, err := GridChunks(n, grid)
	if err != nil {
		t.Fatal(err)
	}
	return &StrategyPlan{Strategy: "hom", N: n, Chunks: chunks, Grid: grid, K: 1,
		Predicted: float64(2 * n * grid)}
}

func TestLinkPacesCommTime(t *testing.T) {
	const (
		n  = 32
		bw = 12800.0 // elements/s: 128 elements take 10 ms
	)
	a, b := linkVectors(n)
	plan := gridPlan(t, n, 2)
	rep, err := Run(plan, a, b, Options{
		Speeds:        []float64{1},
		WorkPerSecond: 1e8, // compute is negligible next to comm
		Link:          Link{ElemsPerSecond: bw},
		VerifyEvery:   7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DataVolume != 128 {
		t.Fatalf("volume %v, want 128", rep.DataVolume)
	}
	wantComm := rep.DataVolume / bw
	if rep.CommTime < 0.95*wantComm {
		t.Errorf("comm time %v, want ≥ %v (bandwidth not paced)", rep.CommTime, 0.95*wantComm)
	}
	if rep.Makespan < 0.95*wantComm {
		t.Errorf("makespan %v below the link-bound %v", rep.Makespan, wantComm)
	}
	if rep.LinkCapacity != bw {
		t.Errorf("report link capacity %v, want %v", rep.LinkCapacity, bw)
	}
	exp := rep.Expect(1e-6)
	if exp.LinkCapacity != bw {
		t.Errorf("Expect does not thread the link capacity: %v", exp.LinkCapacity)
	}
	if vs := trace.Check(rep.Trace, exp); len(vs) != 0 {
		t.Errorf("trace violations: %v", vs)
	}
}

// TestLinkSerializesAcrossWorkers checks the one-port model: with p
// workers sharing the master link, the makespan cannot beat total
// volume / bandwidth no matter the parallelism, and the trace passes the
// link-capacity invariant.
func TestLinkSerializesAcrossWorkers(t *testing.T) {
	const (
		n  = 64
		bw = 25600.0 // 2·64·4 = 512 elements take 20 ms
	)
	a, b := linkVectors(n)
	plan := gridPlan(t, n, 4)
	rep, err := Run(plan, a, b, Options{
		Speeds:        []float64{1, 1, 1, 1},
		WorkPerSecond: 1e8,
		Link:          Link{ElemsPerSecond: bw},
	})
	if err != nil {
		t.Fatal(err)
	}
	linkBound := rep.DataVolume / bw
	if rep.Makespan < 0.95*linkBound {
		t.Errorf("makespan %v beats the one-port bound %v — transfers not serialized", rep.Makespan, linkBound)
	}
	if vs := trace.Check(rep.Trace, rep.Expect(1e-6)); len(vs) != 0 {
		t.Errorf("trace violations: %v", vs)
	}
}

// TestPrefetchOverlapsCommWithCompute balances per-chunk transfer and
// compute times and checks that double-buffered prefetch hides most of
// the communication — and that without prefetch nothing overlaps.
func TestPrefetchOverlapsCommWithCompute(t *testing.T) {
	const (
		n    = 64
		grid = 4
		work = 1e5     // 256-cell chunks: 2.56 ms compute each
		bw   = 25000.0 // 32-element chunks: 1.28 ms transfer each
	)
	a, b := linkVectors(n)
	base := Options{
		Speeds:        []float64{1},
		WorkPerSecond: work,
		// A 1-cell burst keeps comm waits from banking compute credit,
		// so the throttle really paces every chunk and overlap is
		// attributable to prefetch alone.
		Burst:       1,
		Link:        Link{ElemsPerSecond: bw},
		VerifyEvery: 13,
	}

	plain, err := Run(gridPlan(t, n, grid), a, b, base)
	if err != nil {
		t.Fatal(err)
	}
	if plain.OverlapFraction > 0.05 {
		t.Errorf("no-prefetch run reports overlap %v, want ~0", plain.OverlapFraction)
	}

	pre := base
	pre.Prefetch = true
	over, err := Run(gridPlan(t, n, grid), a, b, pre)
	if err != nil {
		t.Fatal(err)
	}
	if over.OverlapFraction < 0.3 {
		t.Errorf("prefetch run hides only %v of comm time, want ≥ 0.3", over.OverlapFraction)
	}
	if over.Makespan > 0.95*plain.Makespan {
		t.Errorf("prefetch makespan %v not clearly below sequential %v", over.Makespan, plain.Makespan)
	}
	for _, rep := range []*Report{plain, over} {
		if vs := trace.Check(rep.Trace, rep.Expect(1e-6)); len(vs) != 0 {
			t.Errorf("trace violations: %v", vs)
		}
	}
}

// TestLinkPerWorkerRates caps only worker 0's own link: its transfers
// must stretch to the configured rate while worker 1 still copies at
// memcpy speed.
func TestLinkPerWorkerRates(t *testing.T) {
	const n = 64
	a, b := linkVectors(n)
	// Two owned halves: each worker ships (32 rows + 64 cols) = 96 elems.
	chunks := []Chunk{
		{Task: 0, RowLo: 0, RowHi: 32, ColLo: 0, ColHi: 64, Owner: 0},
		{Task: 1, RowLo: 32, RowHi: 64, ColLo: 0, ColHi: 64, Owner: 1},
	}
	plan := &StrategyPlan{Strategy: "het", N: n, Chunks: chunks, Predicted: 192}
	rep, err := Run(plan, a, b, Options{
		Speeds:        []float64{1, 1},
		WorkPerSecond: 1e8,
		Link:          Link{PerWorker: []float64{9600, 0}}, // worker 0: 96 elems in 10 ms
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.PerWorkerCommTime[0]; got < 0.009 {
		t.Errorf("capped worker's comm time %v, want ≥ 10 ms", got)
	}
	if got := rep.PerWorkerCommTime[1]; got > 0.005 {
		t.Errorf("uncapped worker's comm time %v, want memcpy-fast", got)
	}
	if rep.LinkCapacity != 0 {
		t.Errorf("aggregate capacity %v reported without a shared-port cap", rep.LinkCapacity)
	}
	if vs := trace.Check(rep.Trace, rep.Expect(1e-6)); len(vs) != 0 {
		t.Errorf("trace violations: %v", vs)
	}
}

func TestLinkOptionValidation(t *testing.T) {
	const n = 8
	a, b := linkVectors(n)
	plan := gridPlan(t, n, 2)
	_, err := Run(plan, a, b, Options{
		Speeds: []float64{1, 1},
		Link:   Link{PerWorker: []float64{1e6}}, // 1 rate for 2 workers
	})
	if err == nil {
		t.Error("mismatched per-worker link rates should fail")
	}
}
