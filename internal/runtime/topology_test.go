package runtime

import (
	"math"
	"strings"
	"testing"

	"nlfl/internal/faults"
	"nlfl/internal/matmul"
	"nlfl/internal/platform"
	"nlfl/internal/trace"
)

// topoFor builds one of the three sweep topologies with every capacity
// set from bw: a star with aggregate bw, a uniform chain with bw per
// hop, or a two-source network with bw per source.
func topoFor(kind string, workers int, bw float64) Topology {
	switch kind {
	case "star":
		return Star{Aggregate: bw, Workers: workers}
	case "chain":
		return UniformChain(workers, bw)
	case "two-source":
		return SplitTwoSource(workers, bw, bw)
	default:
		panic("unknown topology kind " + kind)
	}
}

func TestTopologyOptionValidation(t *testing.T) {
	pl, err := platform.FromSpeeds([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	a, b := chaosVectors(t, n, 1)
	plan, err := PlanHom(pl, n)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opts Options
		want string
	}{
		{"topology+link", Options{Speeds: pl.Speeds(), Link: Link{ElemsPerSecond: 1e5}, Topology: UniformChain(3, 1e5)}, "mutually exclusive"},
		{"chain wrong size", Options{Speeds: pl.Speeds(), Topology: UniformChain(2, 1e5)}, "chain has 2 hops"},
		{"chain zero hop", Options{Speeds: pl.Speeds(), Topology: Chain{HopRates: []float64{1e5, 0, 1e5}}}, "must be positive"},
		{"star wrong size", Options{Speeds: pl.Speeds(), Topology: Star{Aggregate: 1e5, Workers: 2}}, "sized for 2 workers"},
		{"two-source wrong assign len", Options{Speeds: pl.Speeds(), Topology: TwoSource{SourceRates: [2]float64{1e5, 1e5}, Assign: []int{0, 1}}}, "2 entries"},
		{"two-source bad source", Options{Speeds: pl.Speeds(), Topology: TwoSource{SourceRates: [2]float64{1e5, 1e5}, Assign: []int{0, 1, 2}}}, "must be 0 or 1"},
		{"two-source zero rate", Options{Speeds: pl.Speeds(), Topology: TwoSource{SourceRates: [2]float64{1e5, 0}, Assign: []int{0, 0, 1}}}, "must be positive"},
	}
	for _, tc := range cases {
		if _, err := Run(plan, a, b, tc.opts); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

// TestStarViaTopologyMatchesLink pins the refactor's zero-behavior-change
// contract: an explicit Star topology and the legacy Options.Link produce
// the same booking numerics — same delivered volume, same modeled comm
// time — and both pass the oracle with the per-edge invariant armed.
func TestStarViaTopologyMatchesLink(t *testing.T) {
	pl := snappedPlatform(t)
	const (
		n  = 64
		bw = 2e5
	)
	a, b := chaosVectors(t, n, 7)
	plan, err := PlanHom(pl, n)
	if err != nil {
		t.Fatal(err)
	}
	base := Options{Speeds: pl.Speeds(), WorkPerSecond: 2e5, VerifyEvery: 101}

	viaLink := base
	viaLink.Link = Link{ElemsPerSecond: bw}
	repLink, err := Run(plan, a, b, viaLink)
	if err != nil {
		t.Fatal(err)
	}
	viaTopo := base
	viaTopo.Topology = Star{Aggregate: bw, Workers: len(pl.Speeds())}
	repTopo, err := Run(plan, a, b, viaTopo)
	if err != nil {
		t.Fatal(err)
	}

	for _, rep := range []*Report{repLink, repTopo} {
		if rep.Topology != "star" {
			t.Errorf("topology = %q, want star", rep.Topology)
		}
		if rep.LinkCapacity != bw {
			t.Errorf("link capacity %v, want %v", rep.LinkCapacity, bw)
		}
		if len(rep.Edges) == 0 {
			t.Fatalf("no per-edge report")
		}
		if vs := trace.Check(rep.Trace, rep.Expect(1e-9)); len(vs) != 0 {
			t.Errorf("trace violations: %v", vs)
		}
		if rep.RelayVolume != 0 {
			t.Errorf("star recorded relay volume %v", rep.RelayVolume)
		}
		if got := rep.Edges[0].Volume; got != rep.DataVolume {
			t.Errorf("master-port volume %v ≠ delivered volume %v", got, rep.DataVolume)
		}
		if u := rep.Edges[0].Utilization; u < 0 || u > 1+1e-9 {
			t.Errorf("master-port utilization %v outside [0,1]", u)
		}
	}
	if repLink.DataVolume != repTopo.DataVolume {
		t.Errorf("delivered volume differs: link %v, topology %v", repLink.DataVolume, repTopo.DataVolume)
	}
	// Every transfer books Data/bw on the shared port in both runs, so
	// total comm time matches up to summation order.
	if d := math.Abs(repLink.CommTime - repTopo.CommTime); d > 1e-9*(repLink.CommTime+1) {
		t.Errorf("comm time differs: link %v, topology %v", repLink.CommTime, repTopo.CommTime)
	}
}

// TestChainHetEdgeAccounting runs the owned het plan over a uniform
// daisy-chain and checks the accounting identities the forwarding model
// must satisfy: per-edge volumes match the plan's static edge loads
// exactly, volumes are nonincreasing along the chain (edge i carries
// exactly the chunks owned at depth ≥ i), the relay ledger closes
// (Σ edge volumes = delivered + relayed), the makespan respects the
// hop-serialized delivery floor, and the oracle is clean with the
// per-edge invariant armed.
func TestChainHetEdgeAccounting(t *testing.T) {
	pl, err := platform.FromSpeeds([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	const (
		n  = 24
		bw = 5e4
	)
	a, b := chaosVectors(t, n, 9)
	plan, err := PlanHet(pl, n)
	if err != nil {
		t.Fatal(err)
	}
	topo := UniformChain(len(pl.Speeds()), bw)
	rep, err := Run(plan, a, b, Options{Speeds: pl.Speeds(), WorkPerSecond: 2e5, Topology: topo, VerifyEvery: 53})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Topology != "chain" {
		t.Fatalf("topology = %q, want chain", rep.Topology)
	}
	if vs := trace.Check(rep.Trace, rep.Expect(1e-9)); len(vs) != 0 {
		t.Fatalf("trace violations: %v", vs)
	}
	if rep.RelayVolume <= 0 {
		t.Fatalf("chain run recorded no relay traffic")
	}
	loads, ok := EdgeLoads(plan, topo)
	if !ok {
		t.Fatalf("EdgeLoads not computable for an owned plan")
	}
	edgeSum := 0.0
	for e, er := range rep.Edges {
		if er.Volume != loads[e] {
			t.Errorf("edge %s volume %v ≠ planned load %v", er.Name, er.Volume, loads[e])
		}
		if e > 0 && rep.Edges[e].Volume > rep.Edges[e-1].Volume {
			t.Errorf("edge volumes not monotone: %s carries %v > %s's %v",
				er.Name, er.Volume, rep.Edges[e-1].Name, rep.Edges[e-1].Volume)
		}
		if er.Utilization < 0 || er.Utilization > 1+1e-9 {
			t.Errorf("edge %s utilization %v outside [0,1]", er.Name, er.Utilization)
		}
		edgeSum += er.Volume
	}
	if edgeSum != rep.DataVolume+rep.RelayVolume {
		t.Errorf("edge ledger leaks: Σ edge volumes %v ≠ delivered %v + relayed %v",
			edgeSum, rep.DataVolume, rep.RelayVolume)
	}
	floor, ok := DeliveryFloor(plan, topo)
	if !ok || floor <= 0 {
		t.Fatalf("DeliveryFloor not computable (floor %v, ok %v)", floor, ok)
	}
	if rep.Makespan < floor-1e-9 {
		t.Errorf("makespan %v below the hop-serialized delivery floor %v", rep.Makespan, floor)
	}
	// LinkCapacity is a star-only figure; a chain must not pretend to one.
	if rep.LinkCapacity != 0 {
		t.Errorf("chain reported aggregate LinkCapacity %v", rep.LinkCapacity)
	}
}

// TestTwoSourceEdgeAccounting checks that each source link carries
// exactly its own workers' traffic and the two drains never appear on
// each other's edge.
func TestTwoSourceEdgeAccounting(t *testing.T) {
	pl, err := platform.FromSpeeds([]float64{1, 1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	const (
		n  = 32
		bw = 5e4
	)
	a, b := chaosVectors(t, n, 13)
	plan, err := PlanHet(pl, n)
	if err != nil {
		t.Fatal(err)
	}
	topo := SplitTwoSource(len(pl.Speeds()), bw, bw)
	rep, err := Run(plan, a, b, Options{Speeds: pl.Speeds(), WorkPerSecond: 2e5, Topology: topo, VerifyEvery: 53})
	if err != nil {
		t.Fatal(err)
	}
	if vs := trace.Check(rep.Trace, rep.Expect(1e-9)); len(vs) != 0 {
		t.Fatalf("trace violations: %v", vs)
	}
	if rep.RelayVolume != 0 {
		t.Errorf("two-source run recorded relay volume %v", rep.RelayVolume)
	}
	loads, ok := EdgeLoads(plan, topo)
	if !ok {
		t.Fatalf("EdgeLoads not computable for an owned plan")
	}
	if len(rep.Edges) != 2 {
		t.Fatalf("two-source reported %d edges", len(rep.Edges))
	}
	for e, er := range rep.Edges {
		if er.Volume != loads[e] {
			t.Errorf("edge %s volume %v ≠ planned load %v", er.Name, er.Volume, loads[e])
		}
		if er.Volume <= 0 {
			t.Errorf("edge %s carried no traffic", er.Name)
		}
	}
	if got := rep.Edges[0].Volume + rep.Edges[1].Volume; got != rep.DataVolume {
		t.Errorf("source volumes %v ≠ delivered volume %v", got, rep.DataVolume)
	}
}

// TestPerWorkerOnlyCapsAuditedPerEdge is the failing-before regression
// for a latent star-only gap: with only per-worker caps (no aggregate),
// Report.LinkCapacity is 0 so the old oracle armed no capacity invariant
// at all — a trace shipping faster than a worker's own link passed. The
// per-edge sweep closes the gap.
func TestPerWorkerOnlyCapsAuditedPerEdge(t *testing.T) {
	pl := snappedPlatform(t)
	const (
		n   = 24
		cap = 1e5
	)
	p := len(pl.Speeds())
	a, b := chaosVectors(t, n, 17)
	plan, err := PlanHom(pl, n)
	if err != nil {
		t.Fatal(err)
	}
	per := make([]float64, p)
	for i := range per {
		per[i] = cap
	}
	rep, err := Run(plan, a, b, Options{Speeds: pl.Speeds(), WorkPerSecond: 2e5, Link: Link{PerWorker: per}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.LinkCapacity != 0 {
		t.Fatalf("per-worker-only caps reported aggregate capacity %v", rep.LinkCapacity)
	}
	if vs := trace.Check(rep.Trace, rep.Expect(1e-9)); len(vs) != 0 {
		t.Fatalf("clean run has violations: %v", vs)
	}

	// Tamper: compress one transfer to 4× its worker's link rate.
	tampered := false
	for w := range rep.Trace.Spans {
		for i, s := range rep.Trace.Spans[w] {
			if s.Kind == trace.Comm && s.Data > 0 && s.Duration() > 0 {
				rep.Trace.Spans[w][i].End = s.Start + s.Duration()/4
				tampered = true
				break
			}
		}
		if tampered {
			break
		}
	}
	if !tampered {
		t.Fatal("no comm span to tamper with")
	}

	// The pre-refactor oracle shape: aggregate capacity only, no edges.
	legacy := rep.Expect(1e-9)
	legacy.Edges = nil
	legacy.Routes = nil
	legacy.HasComm = false // duration tampering does not change volumes
	legacy.BoundKind = trace.BoundNone
	for _, v := range trace.Check(rep.Trace, legacy) {
		if v.Kind == trace.LinkCapacityExceeded || v.Kind == trace.EdgeCapacityExceeded {
			t.Fatalf("legacy aggregate-only oracle unexpectedly caught the overdrive: %v (regression baseline broken)", v)
		}
	}

	exp := rep.Expect(1e-9)
	exp.HasComm = false
	exp.BoundKind = trace.BoundNone
	found := false
	for _, v := range trace.Check(rep.Trace, exp) {
		if v.Kind == trace.EdgeCapacityExceeded {
			found = true
		}
	}
	if !found {
		t.Fatalf("per-edge sweep missed a transfer at 4× the per-worker cap")
	}
}

// TestTopologyPropertySweep mirrors the 210-case chaos sweep across the
// topology axis: {star, chain, two-source} × {hom, hom/k, het} ×
// {fault-free, chaos} × seeds — 216 runs, every one audited by the
// per-edge oracle with zero violations, the correct product, and (under
// chaos) the closed recovery ledger.
func TestTopologyPropertySweep(t *testing.T) {
	const (
		seeds = 72
		n     = 24
		bw    = 5e4
	)
	// Snapped speeds: fault-free cases assert the exact analytic volume
	// (BoundExact), which only closes when the hom grid hits the closed
	// form with no rounding.
	pl := snappedPlatform(t)
	p := len(pl.Speeds())
	a, b := chaosVectors(t, n, 31)
	want := matmul.VectorOuter(a, b)

	cases := 0
	var degraded, retried, relayed int
	for seed := 0; seed < seeds; seed++ {
		var plan *StrategyPlan
		var err error
		switch seed % 3 {
		case 0:
			plan, err = PlanHom(pl, n)
		case 1:
			plan, err = PlanHomK(pl, n, 0.01, 0)
		default:
			plan, err = PlanHet(pl, n)
		}
		if err != nil {
			t.Fatal(err)
		}
		chaosOn := (seed/3)%2 == 1
		var ch Chaos
		if chaosOn {
			ch = Chaos{MaxRetries: 8, BackoffBase: 2e-4, BackoffMax: 1e-3}
			switch (seed / 6) % 3 {
			case 0:
				sc, err := faults.RandomCrashes(p, 1, 0.002, int64(seed))
				if err != nil {
					t.Fatal(err)
				}
				ch.Scenario = sc
			case 1:
				sc, err := faults.RandomStragglers(p, 2, 0.1, 0.0002, 0.002, int64(seed))
				if err != nil {
					t.Fatal(err)
				}
				ch.Scenario = sc
				ch.SpeculateAfter = 0.001
			default:
				crash, err := faults.RandomCrashes(p, 1, 0.0015, int64(seed))
				if err != nil {
					t.Fatal(err)
				}
				flaky, err := faults.FlakyLinks(p, 1, 0.5, 0, 0.001, int64(seed))
				if err != nil {
					t.Fatal(err)
				}
				ch.Scenario = faults.Scenario{
					Events: append(crash.Events, flaky.Events...),
					Seed:   int64(seed),
				}
				ch.SpeculateAfter = 0.002
			}
		}
		for _, kind := range []string{"star", "chain", "two-source"} {
			cases++
			rep, err := Run(plan, a, b, Options{
				Speeds:        pl.Speeds(),
				WorkPerSecond: 2e5,
				Burst:         1,
				Topology:      topoFor(kind, p, bw),
				Chaos:         ch,
			})
			if err != nil {
				t.Fatalf("seed %d %s/%s: %v", seed, kind, plan.Strategy, err)
			}
			if !want.Equal(rep.Out, 0) {
				t.Fatalf("seed %d %s/%s: wrong product", seed, kind, plan.Strategy)
			}
			exp := rep.Expect(1e-9)
			if len(exp.Edges) == 0 {
				t.Fatalf("seed %d %s/%s: per-edge invariant not armed", seed, kind, plan.Strategy)
			}
			if vs := trace.Check(rep.Trace, exp); len(vs) != 0 {
				t.Fatalf("seed %d %s/%s: trace violations: %v", seed, kind, plan.Strategy, vs)
			}
			if chaosOn {
				if rep.CommittedVolume != rep.ReplannedVolume {
					t.Fatalf("seed %d %s/%s: committed %v ≠ replanned %v",
						seed, kind, plan.Strategy, rep.CommittedVolume, rep.ReplannedVolume)
				}
				if rep.DataVolume != rep.CommittedVolume+rep.WastedData {
					t.Fatalf("seed %d %s/%s: shipping ledger leaks", seed, kind, plan.Strategy)
				}
			}
			switch kind {
			case "chain":
				if rep.RelayVolume > 0 {
					relayed++
				}
			default:
				if rep.RelayVolume != 0 {
					t.Fatalf("seed %d %s/%s: single-hop topology recorded relays", seed, kind, plan.Strategy)
				}
			}
			degraded += rep.DegradedWorkers
			retried += rep.RetriedChunks
		}
	}
	if cases < 200 {
		t.Fatalf("sweep ran %d cases, want ≥ 200", cases)
	}
	// The sweep must actually exercise the machinery, not dodge it.
	if relayed == 0 {
		t.Errorf("no chain run recorded relay traffic across %d cases", cases)
	}
	if degraded == 0 {
		t.Errorf("no crash was realized across %d cases", cases)
	}
	if retried == 0 {
		t.Errorf("no transfer retry across %d cases", cases)
	}
}
