package runtime

import (
	"context"
	"time"

	"nlfl/internal/matmul"
)

// This file exports the pool's building blocks — the token-bucket
// throttle, the topology-aware network booker, the rectangle kernels
// and the survivor re-planner — for layers that own workers across many
// runs (internal/service's long-lived fleet) instead of spinning a pool
// per job. One implementation serves both: a fleet worker is paced,
// booked and re-planned by exactly the code a single Run uses.

// Throttle is the exported token-bucket pacer: it stretches compute to
// the duration a speed-s processor would need (see tokenBucket). One
// Throttle belongs to exactly one goroutine.
type Throttle struct {
	tb *tokenBucket
}

// NewThrottle builds a throttle refilling at rate cells/second; a
// non-positive burst defaults to 5 ms of credit.
func NewThrottle(rate, burst float64) *Throttle {
	return &Throttle{tb: newTokenBucket(rate, burst)}
}

// Acquire blocks until n cells of credit are available and consumes them.
func (t *Throttle) Acquire(n float64) { t.tb.acquire(n) }

// AcquireWithin is Acquire with a sleep budget: false means the budget
// elapsed first and the payment is forfeited (the chunk was cut short).
// A negative budget means no deadline.
func (t *Throttle) AcquireWithin(n float64, budget time.Duration) bool {
	return t.tb.acquireWithin(n, budget)
}

// Window is one booked transfer window on one topology edge, in
// live-clock seconds.
type Window struct {
	// Edge is the topology edge id the window occupies (-1 on a
	// disabled or unconstrained booking).
	Edge       int
	Start, End float64
}

// Network is the exported topology-aware booker: transfers book
// non-overlapping windows on every capped edge of the worker's route
// exactly as Run's internal model does — circuit style for star and
// two-source networks, hop-by-hop for chains.
type Network struct {
	nl    *netLink
	topo  Topology
	clock func() float64
}

// NewNetwork builds the booking state for topo over `workers` workers;
// now supplies the live clock in seconds. A nil topology — or one whose
// routes have no capped edge — yields a network whose Enabled reports
// false and whose Book windows are instant. A malformed topology is an
// error.
func NewNetwork(topo Topology, workers int, now func() float64) (*Network, error) {
	if topo != nil {
		if err := topo.Validate(workers); err != nil {
			return nil, err
		}
	}
	return &Network{nl: newNetLink(topo, workers, now), topo: topo, clock: now}, nil
}

// Enabled reports whether any edge constraint is configured.
func (n *Network) Enabled() bool { return n.nl != nil }

// Constrained reports whether worker w's route has any capped edge —
// false means its transfers take the memcpy path and occupy no modeled
// edge.
func (n *Network) Constrained(w int) bool { return n.nl != nil && n.nl.constrained(w) }

// Topology returns the modeled topology (nil when disabled).
func (n *Network) Topology() Topology {
	if n.nl == nil {
		return nil
	}
	return n.topo
}

// Capacity returns the star aggregate shared-port rate, preserving the
// legacy LinkCapacity semantics; for non-star topologies — where no
// single aggregate figure is meaningful — it returns 0 and callers
// should consult Edges instead.
func (n *Network) Capacity() float64 {
	if n.nl == nil {
		return 0
	}
	if st, ok := n.topo.(Star); ok && st.Aggregate > 0 {
		return st.Aggregate
	}
	return 0
}

// Book reserves the transfer windows of elems elements for worker w: the
// delivery window plus any intermediate relay windows (hop order; empty
// for circuit routes). It never sleeps. On a disabled network or an
// unconstrained worker the delivery window is [now, now] on edge −1.
func (n *Network) Book(w int, elems float64) (delivery Window, relays []Window) {
	if n.nl == nil || !n.nl.constrained(w) {
		t := n.clock()
		return Window{Edge: -1, Start: t, End: t}, nil
	}
	del, rel := n.nl.book(w, elems)
	out := make([]Window, len(rel))
	for i, r := range rel {
		out[i] = Window{Edge: r.edge, Start: r.start, End: r.end}
	}
	return Window{Edge: del.edge, Start: del.start, End: del.end}, out
}

// Wait sleeps until the booked delivery window's end has passed, or
// until ctx is cancelled — false means cancelled.
func (n *Network) Wait(ctx context.Context, end float64) bool {
	if n.nl == nil {
		return ctx.Err() == nil
	}
	return n.nl.wait(ctx, end)
}

// EdgeReports returns the per-edge measured traffic for a run of the
// given makespan (nil when disabled).
func (n *Network) EdgeReports(makespan float64) []EdgeReport {
	if n.nl == nil {
		return nil
	}
	return n.nl.edgeReports(makespan)
}

// SpanRoutes returns trace.Expect.Routes for the network: per worker,
// the edge ids its delivery Comm spans occupy (nil when disabled).
func (n *Network) SpanRoutes() [][]int {
	if n.nl == nil {
		return nil
	}
	return n.nl.spanRoutes()
}

// SharedLink is the exported one-port master link, retained as the
// star-shaped façade over Network for callers that only configure a
// Link.
type SharedLink struct {
	net *Network
}

// NewSharedLink builds the booking state for cfg over `workers` links.
// now supplies the live clock in seconds. An unconstrained cfg yields a
// link whose Enabled reports false and whose Book windows are instant.
func NewSharedLink(cfg Link, workers int, now func() float64) *SharedLink {
	// starFromLink yields a valid Star by construction, so NewNetwork
	// cannot fail here.
	net, err := NewNetwork(starFromLink(cfg, workers), workers, now)
	if err != nil {
		panic(err)
	}
	return &SharedLink{net: net}
}

// Enabled reports whether any bandwidth constraint is configured.
func (l *SharedLink) Enabled() bool { return l.net.Enabled() }

// Capacity returns the aggregate shared-port rate (0 when unconstrained).
func (l *SharedLink) Capacity() float64 { return l.net.Capacity() }

// Book reserves the next window of elems elements for worker w and
// returns it in live-clock seconds; it never sleeps. On an unconstrained
// link the window is [now, now].
func (l *SharedLink) Book(w int, elems float64) (start, end float64) {
	del, _ := l.net.Book(w, elems)
	return del.Start, del.End
}

// Wait sleeps until the booked window's end has passed, or until ctx is
// cancelled — false means cancelled.
func (l *SharedLink) Wait(ctx context.Context, end float64) bool {
	return l.net.Wait(ctx, end)
}

// FillRect computes the chunk's rectangle of the outer product a̅×b̅ into
// dst (row-major, width ColHi−ColLo) from the worker-local copies aBuf
// (the chunk's row interval) and bBuf (its column interval), tiled like
// the in-pool kernel.
func FillRect(dst []float64, aBuf, bBuf []float64, c Chunk) {
	fillChunkInto(dst, aBuf, bBuf, c)
}

// CommitRect copies a finished rectangle into the output matrix. Callers
// must guarantee winning rectangles are disjoint (first-writer-wins at
// commit time), which is what makes the copy lock-free.
func CommitRect(out *matmul.Matrix, scratch []float64, c Chunk) {
	commitChunk(out, scratch, c)
}

// ReplanOwned maps a dead worker's owned rectangle onto the surviving
// workers via the PERI-SUM partition (see replanOwnedChunk): pieces tile
// the lost rectangle exactly, carry Task −1 for the caller to re-number,
// and are owned by owners[i]. With no survivors the whole rectangle is
// returned ownerless.
func ReplanOwned(c Chunk, owners []int, speeds []float64) []Chunk {
	return replanOwnedChunk(c, owners, speeds)
}
