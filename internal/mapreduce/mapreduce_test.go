package mapreduce

import (
	"math"
	"testing"
	"testing/quick"

	"nlfl/internal/matmul"
	"nlfl/internal/partition"
	"nlfl/internal/platform"
	"nlfl/internal/stats"
)

func TestWordCount(t *testing.T) {
	lines := []string{
		"the quick brown fox",
		"the lazy dog",
		"The DOG and the FOX",
	}
	out, ctr, err := WordCount(lines, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"the": 4, "quick": 1, "brown": 1, "fox": 2, "lazy": 1, "dog": 2, "and": 1}
	if len(out) != len(want) {
		t.Fatalf("got %d keys, want %d: %v", len(out), len(want), out)
	}
	for k, v := range want {
		if out[k] != v {
			t.Errorf("count[%q] = %d, want %d", k, out[k], v)
		}
	}
	if ctr.InputRecords != 3 || ctr.MapOutputPairs != 12 {
		t.Errorf("counters: %+v", ctr)
	}
	// The combiner must shrink the shuffle below the map output.
	if ctr.ShufflePairs > ctr.MapOutputPairs {
		t.Errorf("shuffle %d exceeds map output %d", ctr.ShufflePairs, ctr.MapOutputPairs)
	}
}

func TestJobValidation(t *testing.T) {
	j := &Job[int, int, int, int]{}
	if _, _, err := j.Run([]int{1}); err == nil {
		t.Error("missing Map/Reduce should fail")
	}
}

func TestJobDeterminism(t *testing.T) {
	lines := []string{"a b c a", "b c d", "d d d a"}
	_, c1, err := WordCount(lines, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		out, c2, err := WordCount(lines, 4, 4)
		if err != nil {
			t.Fatal(err)
		}
		if c1 != c2 {
			t.Fatalf("counters differ across runs: %+v vs %+v", c1, c2)
		}
		if out["d"] != 4 {
			t.Fatal("wrong result")
		}
	}
}

func TestMatMulPairsCorrect(t *testing.T) {
	a := matmul.Random(7, 5, 1)
	b := matmul.Random(5, 6, 2)
	want, _ := matmul.Naive(a, b)
	for _, combine := range []bool{false, true} {
		got, ctr, err := RunMatMulPairs(a, b, 3, 4, combine)
		if err != nil {
			t.Fatal(err)
		}
		if !want.Equal(got, 1e-9) {
			t.Errorf("combine=%v: MapReduce matmul wrong", combine)
		}
		// Input is the replicated n³-style dataset.
		if ctr.InputRecords != 7*5*6 {
			t.Errorf("input records = %d, want 210", ctr.InputRecords)
		}
		if ctr.OutputKeys != 7*6 {
			t.Errorf("output keys = %d, want 42", ctr.OutputKeys)
		}
	}
}

func TestCombinerShrinksMatMulShuffle(t *testing.T) {
	a := matmul.Random(8, 8, 3)
	b := matmul.Random(8, 8, 4)
	_, noComb, err := RunMatMulPairs(a, b, 4, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	_, comb, err := RunMatMulPairs(a, b, 4, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	// Without combining every one of the n³ partial products crosses the
	// shuffle.
	if noComb.ShufflePairs != 8*8*8 {
		t.Errorf("uncombined shuffle = %d, want 512", noComb.ShufflePairs)
	}
	if comb.ShufflePairs >= noComb.ShufflePairs {
		t.Errorf("combiner failed to shrink shuffle: %d vs %d", comb.ShufflePairs, noComb.ShufflePairs)
	}
}

func TestVectorOuterJob(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5}
	got, ctr, err := RunVectorOuter(a, b, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := matmul.VectorOuter(a, b)
	if !want.Equal(got, 1e-12) {
		t.Error("outer product wrong")
	}
	if ctr.OutputKeys != 3 {
		t.Errorf("output keys = %d", ctr.OutputKeys)
	}
}

func TestScheduleBasics(t *testing.T) {
	pl, err := platform.FromSpeeds([]float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	tasks, err := UniformTasks(40, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Schedule(pl, tasks, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksPerWorker[0]+res.TasksPerWorker[1] != 40 {
		t.Fatalf("task counts %v", res.TasksPerWorker)
	}
	ratio := float64(res.TasksPerWorker[1]) / float64(res.TasksPerWorker[0])
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("fast/slow ratio = %v, want ≈3", ratio)
	}
	for tsk, w := range res.Assignment {
		if w < 0 {
			t.Fatalf("task %d unassigned", tsk)
		}
	}
	if res.Backups != 0 || res.WastedWork != 0 {
		t.Error("speculation disabled but backups ran")
	}
}

func TestScheduleSpeculationHelpsStraggler(t *testing.T) {
	// One crawling worker (speed 0.01) and three fast ones: without
	// backups the crawler strands the last task; with backups a fast
	// worker re-executes it.
	pl, err := platform.FromSpeeds([]float64{0.01, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	tasks, _ := UniformTasks(8, 0, 1)
	plain, err := Schedule(pl, tasks, false)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Schedule(pl, tasks, true)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Makespan >= plain.Makespan {
		t.Errorf("speculation did not help: %v vs %v", spec.Makespan, plain.Makespan)
	}
	if spec.Backups == 0 {
		t.Error("no backups launched")
	}
	if spec.WastedWork <= 0 {
		t.Error("winning backups must strand the original copy's work")
	}
}

func TestScheduleSpeculationNoRegressOnHomogeneous(t *testing.T) {
	pl, err := platform.Homogeneous(4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	tasks, _ := UniformTasks(16, 0.1, 1)
	plain, err := Schedule(pl, tasks, false)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Schedule(pl, tasks, true)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Makespan > plain.Makespan+1e-9 {
		t.Errorf("speculation regressed: %v vs %v", spec.Makespan, plain.Makespan)
	}
}

func TestScheduleValidation(t *testing.T) {
	pl, _ := platform.Homogeneous(2, 1, 1)
	if _, err := Schedule(pl, []TaskSpec{{Data: -1}}, false); err == nil {
		t.Error("negative task should fail")
	}
	res, err := Schedule(pl, nil, true)
	if err != nil || res.Makespan != 0 {
		t.Errorf("empty schedule: %v %v", res, err)
	}
	if _, err := UniformTasks(-1, 0, 0); err == nil {
		t.Error("negative count should fail")
	}
}

func TestDistributionVolumes(t *testing.T) {
	const n = 100
	naive := NaivePairsVolume(n)
	if naive.Volume != 2e6 {
		t.Errorf("naive = %v, want 2·100³", naive.Volume)
	}
	rc := RowColumnVolume(n, 10)
	if rc.Volume != 2*10*100*100 {
		t.Errorf("row-column = %v", rc.Volume)
	}
	if BlockVolume(n, 10).Volume != rc.Volume {
		t.Error("block and row-column volumes should match at equal g")
	}
	grid := GridVolume(n, 4, 4)
	if grid.Volume != 100*100*6 {
		t.Errorf("grid = %v", grid.Volume)
	}
	// The 2D grid must beat the 1D-style distributions for equal p.
	if grid.Volume >= RowColumnVolume(n, 16).Volume {
		t.Error("grid should communicate less than row-column at p=16")
	}
	part, err := partition.PeriSum([]float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	het := HeterogeneousVolume(n, part)
	// 4 equal areas tile as a 2×2 grid: Ĉ = 4, volume = n²·2 = grid(2,2).
	if math.Abs(het.Volume-GridVolume(n, 2, 2).Volume) > 1e-6 {
		t.Errorf("het = %v, want %v", het.Volume, GridVolume(n, 2, 2).Volume)
	}
	all := CompareDistributions(n, 2, 2, part)
	if len(all) != 5 {
		t.Fatalf("menu size %d", len(all))
	}
	for _, d := range all {
		if d.String() == "" || d.Volume <= 0 {
			t.Errorf("bad entry %+v", d)
		}
	}
}

func TestSortedKeys(t *testing.T) {
	ks := SortedKeys(map[int]string{3: "c", 1: "a", 2: "b"})
	if ks[0] != 1 || ks[1] != 2 || ks[2] != 3 {
		t.Errorf("keys = %v", ks)
	}
}

// Property: MapReduce matmul equals the dense kernel for arbitrary small
// shapes and parallelism.
func TestMatMulPairsProperty(t *testing.T) {
	f := func(seed int64, dims [2]uint8, mr [2]uint8) bool {
		m := int(dims[0]%5) + 1
		n := int(dims[1]%5) + 1
		a := matmul.Random(m, n, seed)
		b := matmul.Random(n, m, seed+1)
		want, err := matmul.Naive(a, b)
		if err != nil {
			return false
		}
		got, _, err := RunMatMulPairs(a, b, int(mr[0]%6)+1, int(mr[1]%6)+1, seed%2 == 0)
		if err != nil {
			return false
		}
		return want.Equal(got, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: demand-driven scheduling completes every task exactly once and
// credits data conservatively (total shipped ≥ total task data).
func TestScheduleProperty(t *testing.T) {
	f := func(seed int64, nt uint8, speculate bool) bool {
		r := stats.NewRNG(seed)
		p := 1 + r.Intn(6)
		pl, err := platform.Generate(p, stats.Uniform{Lo: 0.5, Hi: 8}, r)
		if err != nil {
			return false
		}
		tasks := make([]TaskSpec, int(nt%50))
		totData := 0.0
		for i := range tasks {
			tasks[i] = TaskSpec{Data: r.Float64(), Work: r.Float64() * 3}
			totData += tasks[i].Data
		}
		res, err := Schedule(pl, tasks, speculate)
		if err != nil {
			return false
		}
		count := 0
		for _, c := range res.TasksPerWorker {
			count += c
		}
		if count != len(tasks) {
			return false
		}
		shipped := 0.0
		for _, d := range res.DataPerWorker {
			shipped += d
		}
		return shipped >= totData-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSortJob(t *testing.T) {
	r := stats.NewRNG(51)
	keys := stats.SampleN(stats.Uniform{Lo: 0, Hi: 1}, r, 20000)
	splitters := []float64{0.25, 0.5, 0.75}
	got, ctr, err := SortJob(keys, splitters, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(keys) {
		t.Fatalf("length %d, want %d", len(got), len(keys))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("not sorted at %d", i)
		}
	}
	if ctr.ReduceTasks != 4 {
		t.Errorf("reducers = %d, want 4 buckets", ctr.ReduceTasks)
	}
	// Every key crosses the shuffle exactly once (no combiner possible).
	if ctr.ShufflePairs != len(keys) {
		t.Errorf("shuffle = %d, want %d", ctr.ShufflePairs, len(keys))
	}
	// Unsorted splitters rejected.
	if _, _, err := SortJob(keys, []float64{0.5, 0.25}, 2); err == nil {
		t.Error("unsorted splitters should fail")
	}
}

func TestSortJobEdgeCases(t *testing.T) {
	// No splitters: single bucket, still sorted.
	got, _, err := SortJob([]float64{3, 1, 2}, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("got %v", got)
	}
	// Empty input.
	empty, _, err := SortJob(nil, []float64{0.5}, 2)
	if err != nil || len(empty) != 0 {
		t.Errorf("empty sort: %v %v", empty, err)
	}
}

func TestInvertedIndex(t *testing.T) {
	docs := []string{
		"the quick fox",
		"the lazy dog",
		"fox and dog",
	}
	idx, ctr, err := InvertedIndex(docs, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]int{
		"the": {0, 1}, "fox": {0, 2}, "dog": {1, 2}, "quick": {0},
	}
	for term, want := range cases {
		got := idx[term]
		if len(got) != len(want) {
			t.Fatalf("index[%q] = %v, want %v", term, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("index[%q] = %v, want %v", term, got, want)
			}
		}
	}
	if ctr.OutputKeys != 6 {
		t.Errorf("terms = %d, want 6 (the, quick, fox, lazy, dog, and)", ctr.OutputKeys)
	}
	// Duplicate words within a document emit once.
	idx2, _, err := InvertedIndex([]string{"a a a"}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx2["a"]) != 1 {
		t.Errorf("duplicate suppression failed: %v", idx2["a"])
	}
}
