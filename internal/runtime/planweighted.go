package runtime

import (
	"fmt"
	"math"

	"nlfl/internal/core"
	"nlfl/internal/partition"
)

// PlanWeighted builds an owned plan whose per-worker areas are
// proportional to the given weights: the same PERI-SUM partition PlanHet
// runs, but over caller-supplied loads instead of platform speeds — the
// entry point the water-filling re-planner uses to realize a measured-rate
// split. Weights must be non-negative with at least one positive entry;
// worker i owns the rectangle of weight i. A zero weight (or one whose
// rectangle snaps to zero cells on the integer grid) drops that worker
// from the round rather than failing: shared boundaries round to the same
// grid line, so the surviving rectangles still tile the domain exactly.
// Predicted is Σ(wᵢ+hᵢ) over the snapped rectangles — what the plan ships.
func PlanWeighted(strategy string, weights []float64, n int) (*StrategyPlan, error) {
	if n <= 0 {
		return nil, fmt.Errorf("runtime: invalid problem size %d", n)
	}
	idx := make([]int, 0, len(weights))
	areas := make([]float64, 0, len(weights))
	for w, wt := range weights {
		if wt < 0 || math.IsNaN(wt) || math.IsInf(wt, 0) {
			return nil, fmt.Errorf("runtime: worker %d has invalid weight %v", w, wt)
		}
		if wt > 0 {
			idx = append(idx, w)
			areas = append(areas, wt)
		}
	}
	if len(idx) == 0 {
		return nil, fmt.Errorf("runtime: all %d weights are zero", len(weights))
	}
	part, err := partition.PeriSum(areas)
	if err != nil {
		return nil, fmt.Errorf("runtime: weighted partition: %w", err)
	}
	chunks := make([]Chunk, 0, len(part.Rects))
	predicted := 0.0
	task := 0
	for _, r := range part.Rects {
		ir := core.SnapRect(r, n)
		if ir.Cells() <= 0 {
			continue
		}
		c := Chunk{
			Task:  task,
			RowLo: ir.RowLo, RowHi: ir.RowHi,
			ColLo: ir.ColLo, ColHi: ir.ColHi,
			Owner: idx[r.Index],
		}
		task++
		predicted += float64(c.Data())
		chunks = append(chunks, c)
	}
	if len(chunks) == 0 {
		return nil, fmt.Errorf("runtime: every weighted rectangle snapped to zero cells on the %d×%d grid", n, n)
	}
	return &StrategyPlan{
		Strategy:  strategy,
		N:         n,
		Chunks:    chunks,
		K:         0,
		Predicted: predicted,
	}, nil
}
