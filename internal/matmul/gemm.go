package matmul

// packedMulRows computes rows [rowLo,rowHi) of C = A·B through the packed
// register-blocked path: the caller supplies B already packed (shareable
// read-only across row bands), the band's rows of A are repacked locally
// into microM panels, and the micro-kernel fills one microM×microN tile of
// C per call, accumulating entirely in registers over the full k extent.
//
// Loop order is column-block outer: one gemmNC-wide slab of packed B is
// streamed against every row panel of the band before the next slab is
// touched, so the slab (k×gemmNC values) stays cache-resident and B is
// read from memory once per band rather than once per row panel.
//
// Edge tiles (band height not a multiple of microM, n not a multiple of
// microN) run the same micro-kernel into a zero-padded scratch tile whose
// valid region is then copied out, so the hot loop has no bounds logic.
func packedMulRows(c, a, b *Matrix, rowLo, rowHi int, pb *packedB) {
	k := a.Cols
	n := b.Cols
	rows := rowHi - rowLo
	if rows <= 0 {
		return
	}
	pa := make([]float64, ((rows+microM-1)/microM)*k*microM)
	packARows(pa, a, rowLo, rowHi)

	var tmp [microM * microN]float64
	panelsPerBlock := gemmNC / microN
	for jc := 0; jc < pb.panels; jc += panelsPerBlock {
		jpMax := min(jc+panelsPerBlock, pb.panels)
		for ip := 0; ip < rows; ip += microM {
			paPanel := pa[(ip/microM)*k*microM : (ip/microM+1)*k*microM]
			fullRows := ip+microM <= rows
			for jp := jc; jp < jpMax; jp++ {
				col := jp * microN
				pbPanel := pb.panel(jp)
				if fullRows && col+microN <= n {
					microKernel(c.Data[(rowLo+ip)*c.Cols+col:], c.Cols, paPanel, pbPanel, k)
					continue
				}
				microKernel(tmp[:], microN, paPanel, pbPanel, k)
				h := min(microM, rows-ip)
				w := min(microN, n-col)
				for r := 0; r < h; r++ {
					base := (rowLo + ip + r) * c.Cols
					copy(c.Data[base+col:base+col+w], tmp[r*microN:r*microN+w])
				}
			}
		}
	}
}
