// Package matmul implements the matrix-multiplication side of the paper's
// Section 4.2: real dense kernels (the correctness anchor), the
// ScaLAPACK-style outer-product algorithm of Figure 3, and the
// communication accounting that links a data layout's rectangle geometry
// to the volume of broadcasts the algorithm generates.
//
// # Kernels
//
// Three tiers of dense kernels share the Matrix type:
//
//   - Naive, OuterProduct and VectorOuter are the reference
//     implementations — straightforward loops whose output every other
//     kernel (and every distributed executor) is tested against.
//   - Blocked is the classic cache-blocked decomposition with an explicit
//     tile size, kept as the teaching/benchmark baseline.
//   - Tiled and ParallelTiled are the measured-performance kernels: the
//     tile size is autotuned once per process by a small timing probe
//     (AutotuneTile), inputs too small to benefit fall back to the naive
//     kernel, and OuterInto provides the tiled rectangle fill the
//     plan executors (internal/core, internal/runtime) run on their
//     assigned sub-domains.
//
// Parallel splits row bands across goroutines and runs the tiled kernel
// inside each band, so the one exported parallel entry point is also the
// fast one.
//
// # Layouts
//
// Layout abstracts "which processor owns C(i,j)"; the implementations
// (homogeneous blocks, heterogeneous rectangles, 2.5D replication) are
// scored by CommVolume and executed for real by MultiplyWithLayout, tying
// the communication model of the paper to byte-identical numerics.
package matmul
