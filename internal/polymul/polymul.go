// Package polymul is the case study behind the paper's reference [20]
// (Iyer, Veeravalli, Krishnamoorthy: "On handling large-scale polynomial
// multiplications in compute cloud environments using divisible load
// paradigm") — one of the works whose non-linear-DLT framing Section 2
// refutes.
//
// Multiplying two degree-(N-1) polynomials is a convolution. Its cost
// depends entirely on the algorithm:
//
//   - schoolbook: N² — an α=2 power load, NOT divisible (Section 2);
//   - Karatsuba: N^log₂3 ≈ N^1.585 — still super-linear, still not
//     divisible;
//   - FFT convolution: N·log N — almost divisible, like sorting
//     (Section 3).
//
// The same application is or is not amenable to DLT depending on which
// algorithm carries the work — the paper's message in one package. The
// three implementations below are real (and agree with each other);
// Verdicts maps each to its core divisibility classification.
package polymul

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"nlfl/internal/core"
)

// Naive computes the convolution of a and b with the O(N²) schoolbook
// method. The result has len(a)+len(b)-1 coefficients.
func Naive(a, b []float64) ([]float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return nil, errors.New("polymul: empty polynomial")
	}
	out := make([]float64, len(a)+len(b)-1)
	for i, av := range a {
		if av == 0 {
			continue
		}
		for j, bv := range b {
			out[i+j] += av * bv
		}
	}
	return out, nil
}

// Karatsuba computes the same convolution in O(N^log₂3) by the classical
// three-multiplication recursion, falling back to the schoolbook method
// below a small threshold.
func Karatsuba(a, b []float64) ([]float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return nil, errors.New("polymul: empty polynomial")
	}
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	// Pad to a common power-of-two length.
	size := 1
	for size < n {
		size <<= 1
	}
	ap := make([]float64, size)
	bp := make([]float64, size)
	copy(ap, a)
	copy(bp, b)
	full := karatsuba(ap, bp)
	return full[:len(a)+len(b)-1], nil
}

const karatsubaCutoff = 32

func karatsuba(a, b []float64) []float64 {
	n := len(a)
	if n <= karatsubaCutoff {
		out := make([]float64, 2*n-1)
		for i, av := range a {
			for j, bv := range b {
				out[i+j] += av * bv
			}
		}
		return append(out, 0) // uniform 2n length simplifies recombination
	}
	h := n / 2
	a0, a1 := a[:h], a[h:]
	b0, b1 := b[:h], b[h:]
	low := karatsuba(a0, b0)   // length 2h
	high := karatsuba(a1, b1)  // length 2h
	sumA := make([]float64, h) // a0 + a1
	sumB := make([]float64, h)
	for i := 0; i < h; i++ {
		sumA[i] = a0[i] + a1[i]
		sumB[i] = b0[i] + b1[i]
	}
	mid := karatsuba(sumA, sumB) // (a0+a1)(b0+b1), length 2h
	out := make([]float64, 2*n)
	for i, v := range low {
		out[i] += v
		mid[i] -= v
	}
	for i, v := range high {
		out[2*h+i] += v
		mid[i] -= v
	}
	for i, v := range mid {
		out[h+i] += v
	}
	return out
}

// FFT computes the convolution in O(N·log N) via a radix-2 iterative
// complex FFT with zero padding.
func FFT(a, b []float64) ([]float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return nil, errors.New("polymul: empty polynomial")
	}
	outLen := len(a) + len(b) - 1
	size := 1
	for size < outLen {
		size <<= 1
	}
	fa := make([]complex128, size)
	fb := make([]complex128, size)
	for i, v := range a {
		fa[i] = complex(v, 0)
	}
	for i, v := range b {
		fb[i] = complex(v, 0)
	}
	fft(fa, false)
	fft(fb, false)
	for i := range fa {
		fa[i] *= fb[i]
	}
	fft(fa, true)
	out := make([]float64, outLen)
	for i := range out {
		out[i] = real(fa[i]) / float64(size)
	}
	return out, nil
}

// fft performs an in-place iterative Cooley–Tukey transform; invert=true
// gives the (unscaled) inverse.
func fft(xs []complex128, invert bool) {
	n := len(xs)
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			xs[i], xs[j] = xs[j], xs[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		angle := 2 * math.Pi / float64(length)
		if invert {
			angle = -angle
		}
		wl := cmplx.Exp(complex(0, angle))
		for start := 0; start < n; start += length {
			w := complex(1, 0)
			for k := 0; k < length/2; k++ {
				u := xs[start+k]
				v := xs[start+k+length/2] * w
				xs[start+k] = u + v
				xs[start+k+length/2] = u - v
				w *= wl
			}
		}
	}
}

// Algorithm names a convolution strategy.
type Algorithm int

// Available algorithms.
const (
	AlgoNaive Algorithm = iota
	AlgoKaratsuba
	AlgoFFT
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case AlgoNaive:
		return "schoolbook"
	case AlgoKaratsuba:
		return "karatsuba"
	case AlgoFFT:
		return "fft"
	default:
		return fmt.Sprintf("algorithm(%d)", int(a))
	}
}

// Multiply dispatches to the chosen algorithm.
func Multiply(a, b []float64, algo Algorithm) ([]float64, error) {
	switch algo {
	case AlgoNaive:
		return Naive(a, b)
	case AlgoKaratsuba:
		return Karatsuba(a, b)
	case AlgoFFT:
		return FFT(a, b)
	default:
		return nil, fmt.Errorf("polymul: unknown algorithm %v", algo)
	}
}

// Verdict returns the core divisibility classification of running the
// given algorithm on size-n inputs over p workers: the paper's Section 2
// test applied to this application.
func Verdict(algo Algorithm, n float64, p int) (core.Verdict, error) {
	switch algo {
	case AlgoNaive:
		return core.Analyze(core.Workload{Kind: core.Power, N: n, Alpha: 2}, p)
	case AlgoKaratsuba:
		return core.Analyze(core.Workload{Kind: core.Power, N: n, Alpha: math.Log2(3)}, p)
	case AlgoFFT:
		return core.Analyze(core.Workload{Kind: core.LogLinear, N: n}, p)
	default:
		return core.Verdict{}, fmt.Errorf("polymul: unknown algorithm %v", algo)
	}
}
