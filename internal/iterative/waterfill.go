package iterative

import (
	"errors"
	"fmt"
	"math"
)

// Typed water-filling failures.
var (
	// ErrBadParams marks malformed solver inputs (non-positive unit
	// times, negative overheads, invalid load).
	ErrBadParams = errors.New("iterative: invalid water-filling parameters")
	// ErrInfeasible marks a load no finite water level can cover — the
	// bisection bracket could not be closed.
	ErrInfeasible = errors.New("iterative: water-filling infeasible")
)

// Params is one water-filling instance: split Load units of work over the
// workers so every loaded worker finishes at the same instant θ. Worker
// i's round time is modeled as cᵢ + mᵢκᵢ plus — when Gamma > 0 — the
// nonlinear penalty γ(cᵢ + mᵢκᵢ)² + γσᵢ²κᵢ of the streaming iterative
// model (Esfahanizadeh et al., see SNIPPETS.md): quadratic growth in the
// assigned load and a variance tax on jittery workers, the "no free
// lunch" term that shifts load away from fast-but-noisy machines.
type Params struct {
	// Gamma is the nonlinearity coefficient; 0 selects the linear
	// makespan-equalizing split cᵢ + mᵢκᵢ = θ.
	Gamma float64
	// Comm[i] is worker i's fixed per-round overhead in seconds (comm
	// setup, measured from trace Comm spans); nil means all zero.
	Comm []float64
	// Unit[i] is worker i's seconds per unit of load (1/rateᵢ). Required,
	// all positive.
	Unit []float64
	// Sigma[i] is the per-round standard deviation of worker i's unit
	// time in seconds; nil means all zero. Only meaningful with Gamma > 0.
	Sigma []float64
	// Load is the total work Ω to split, in load units (> 0).
	Load float64
}

// Split is a solved water-filling instance.
type Split struct {
	// Kappa[i] is worker i's assigned load; ΣKappa = Load exactly. A
	// worker whose overhead exceeds the water level gets 0.
	Kappa []float64
	// Theta is the common finishing time — the water level the bisection
	// converged to, and the split's predicted round makespan.
	Theta float64
}

// kappaAt inverts the per-worker time model at water level theta: the
// load κᵢ(θ) worker i can absorb and still finish by θ. With γ > 0 this
// is the positive root of γmᵢ²κ² + bᵢκ + (aᵢ−θ) = 0 in the exemplar's
// form; the γ→0 limit is the linear branch max(θ−cᵢ, 0)/mᵢ (the closed
// form divides by γ, so the limit needs its own branch).
func kappaAt(p Params, i int, theta float64) float64 {
	c := 0.0
	if p.Comm != nil {
		c = p.Comm[i]
	}
	m := p.Unit[i]
	if p.Gamma <= 0 {
		return math.Max(theta-c, 0) / m
	}
	sigma := 0.0
	if p.Sigma != nil {
		sigma = p.Sigma[i]
	}
	a := c + p.Gamma*c*c
	b := 2*p.Gamma*c*m + m + p.Gamma*sigma*sigma
	d := math.Max(theta-a, 0)
	if d == 0 {
		return 0
	}
	// −1+√(1+x) written as x/(1+√(1+x)): the direct form cancels
	// catastrophically for small γ and would break the γ→0 continuity.
	x := 4 * p.Gamma * m * m * d / (b * b)
	return b / (2 * p.Gamma * m * m) * (x / (1 + math.Sqrt(1+x)))
}

// WaterFill solves the split by bisection on θ: Σκᵢ(θ) is continuous and
// non-decreasing, so the θ with Σκᵢ(θ) = Load is bracketed by doubling
// and pinned by bisection, then κ is rescaled to sum to Load exactly
// (the bisection residual would otherwise leak into the tiling).
func WaterFill(p Params) (Split, error) {
	n := len(p.Unit)
	if n == 0 {
		return Split{}, fmt.Errorf("%w: no workers", ErrBadParams)
	}
	if p.Load <= 0 || math.IsNaN(p.Load) || math.IsInf(p.Load, 0) {
		return Split{}, fmt.Errorf("%w: load %v", ErrBadParams, p.Load)
	}
	if p.Gamma < 0 || math.IsNaN(p.Gamma) || math.IsInf(p.Gamma, 0) {
		return Split{}, fmt.Errorf("%w: gamma %v", ErrBadParams, p.Gamma)
	}
	if p.Comm != nil && len(p.Comm) != n {
		return Split{}, fmt.Errorf("%w: %d overheads for %d workers", ErrBadParams, len(p.Comm), n)
	}
	if p.Sigma != nil && len(p.Sigma) != n {
		return Split{}, fmt.Errorf("%w: %d sigmas for %d workers", ErrBadParams, len(p.Sigma), n)
	}
	for i, m := range p.Unit {
		if m <= 0 || math.IsNaN(m) || math.IsInf(m, 0) {
			return Split{}, fmt.Errorf("%w: worker %d unit time %v", ErrBadParams, i, m)
		}
		if p.Comm != nil && (p.Comm[i] < 0 || math.IsNaN(p.Comm[i]) || math.IsInf(p.Comm[i], 0)) {
			return Split{}, fmt.Errorf("%w: worker %d overhead %v", ErrBadParams, i, p.Comm[i])
		}
		if p.Sigma != nil && (p.Sigma[i] < 0 || math.IsNaN(p.Sigma[i]) || math.IsInf(p.Sigma[i], 0)) {
			return Split{}, fmt.Errorf("%w: worker %d sigma %v", ErrBadParams, i, p.Sigma[i])
		}
	}
	total := func(theta float64) float64 {
		s := 0.0
		for i := range p.Unit {
			s += kappaAt(p, i, theta)
		}
		return s
	}
	lo, hi := 0.0, 1.0
	for iter := 0; total(hi) < p.Load; iter++ {
		if iter >= 200 {
			return Split{}, fmt.Errorf("%w: Σκ(θ) never reaches load %v", ErrInfeasible, p.Load)
		}
		lo = hi
		hi *= 2
	}
	for iter := 0; iter < 200 && hi-lo > 1e-14*hi; iter++ {
		mid := 0.5 * (lo + hi)
		if total(mid) < p.Load {
			lo = mid
		} else {
			hi = mid
		}
	}
	theta := 0.5 * (lo + hi)
	kappa := make([]float64, n)
	sum := 0.0
	for i := range kappa {
		kappa[i] = kappaAt(p, i, theta)
		sum += kappa[i]
	}
	if sum <= 0 {
		return Split{}, fmt.Errorf("%w: water level θ=%v loads no worker", ErrInfeasible, theta)
	}
	scale := p.Load / sum
	for i := range kappa {
		kappa[i] *= scale
	}
	return Split{Kappa: kappa, Theta: theta}, nil
}
