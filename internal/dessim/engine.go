// Package dessim is a small discrete-event simulator for master–worker
// star platforms.
//
// The paper's model (Section 1.2) is analytically simple — parallel
// master→worker links, no return messages, single round — but several of
// the reproduced experiments need an executable model: the demand-driven
// chunk distribution behind the Homogeneous Blocks strategy (Section 4.1.1),
// the one-port sequential-distribution baseline of the non-linear DLT
// literature (Section 2's references [31–35]), and multi-round linear DLT.
// This package provides the event engine and the star-network executor
// they share.
package dessim

import (
	"container/heap"
	"fmt"
	"math"
)

// event is a scheduled callback.
type event struct {
	time   float64
	seq    int64 // FIFO tie-break for equal times
	action func()
}

// eventQueue is a min-heap on (time, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) {
	*q = append(*q, x.(*event))
}
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is the discrete-event core: a virtual clock plus a time-ordered
// queue of callbacks. Events scheduled at equal times run in scheduling
// order (FIFO), making simulations fully deterministic.
type Engine struct {
	now   float64
	queue eventQueue
	seq   int64
	steps int64
}

// NewEngine returns an engine with the clock at 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() float64 { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() int64 { return e.steps }

// At schedules action at absolute time t. Scheduling in the past (t < Now)
// panics: it would violate causality.
func (e *Engine) At(t float64, action func()) {
	if t < e.now {
		panic(fmt.Sprintf("dessim: scheduling at %v before now=%v", t, e.now))
	}
	if math.IsNaN(t) {
		panic("dessim: scheduling at NaN time")
	}
	e.seq++
	heap.Push(&e.queue, &event{time: t, seq: e.seq, action: action})
}

// After schedules action d time units from now (d must be >= 0).
func (e *Engine) After(d float64, action func()) {
	if d < 0 {
		panic(fmt.Sprintf("dessim: negative delay %v", d))
	}
	e.At(e.now+d, action)
}

// Run executes events until the queue drains and returns the final clock
// value (the makespan of whatever was simulated).
func (e *Engine) Run() float64 {
	for e.queue.Len() > 0 {
		e.step()
	}
	return e.now
}

// RunUntil executes events with time ≤ t, then sets the clock to t (if it
// is not already past it) and returns the number of events executed.
func (e *Engine) RunUntil(t float64) int64 {
	n := int64(0)
	for e.queue.Len() > 0 && e.queue[0].time <= t {
		e.step()
		n++
	}
	if e.now < t {
		e.now = t
	}
	return n
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.queue.Len() }

func (e *Engine) step() {
	ev := heap.Pop(&e.queue).(*event)
	e.now = ev.time
	e.steps++
	ev.action()
}

// Resource models an exclusive serially-reusable resource (a CPU, or the
// master's outgoing port in the one-port model). Book reserves the
// earliest interval of the given duration starting no sooner than t and
// returns its bounds.
type Resource struct {
	freeAt float64
	busy   float64
}

// Book reserves [start, start+dur) with start = max(t, next free time).
func (r *Resource) Book(t, dur float64) (start, end float64) {
	if dur < 0 {
		panic(fmt.Sprintf("dessim: negative booking duration %v", dur))
	}
	start = t
	if r.freeAt > start {
		start = r.freeAt
	}
	end = start + dur
	r.freeAt = end
	r.busy += dur
	return start, end
}

// FreeAt returns the time the resource next becomes available.
func (r *Resource) FreeAt() float64 { return r.freeAt }

// BusyTime returns the cumulative booked duration.
func (r *Resource) BusyTime() float64 { return r.busy }
