package experiments

import (
	"fmt"
	"math"

	"nlfl/internal/mapreduce"
	"nlfl/internal/nldlt"
	"nlfl/internal/outer"
	"nlfl/internal/partition"
	"nlfl/internal/platform"
	"nlfl/internal/plot"
	"nlfl/internal/samplesort"
	"nlfl/internal/stats"
)

// NonLinearTable reproduces Section 2 (experiment E1): the unprocessed
// fraction 1 - 1/P^(α-1) for a grid of platform sizes and exponents, from
// the closed form and from solved optimal allocations.
func NonLinearTable(ps []int, alphas []float64, n float64) (*plot.Table, []nldlt.FractionRow, error) {
	rows, err := nldlt.FractionSweep(ps, alphas, n)
	if err != nil {
		return nil, nil, err
	}
	t := plot.NewTable("α", "P", "closed form", "equal split", "optimal ∥", "optimal 1-port")
	for _, r := range rows {
		t.AddRowf(r.Alpha, r.P, r.ClosedForm, r.EqualSplit, r.Parallel, r.OnePort)
	}
	return t, rows, nil
}

// RhoPoint is one heterogeneity level of the E6 sweep.
type RhoPoint struct {
	K float64
	// Measured is Comm_hom/Comm_het on the half-slow/half-k×-fast
	// platform.
	Measured float64
	// IdealBound is (1+k)/(1+√k); SimpleBound is √k-1; AnalyticBound is
	// (4/7)·Σs/(√s₁Σ√s).
	IdealBound, SimpleBound, AnalyticBound float64
}

// RhoSweep reproduces the Section 4.1.3 example: platforms whose first
// half runs at speed 1 and second half at speed k, for each k.
func RhoSweep(ks []float64, p int, n float64) ([]RhoPoint, error) {
	if p < 2 || p%2 != 0 {
		return nil, fmt.Errorf("experiments: rho sweep needs an even p ≥ 2, got %d", p)
	}
	out := make([]RhoPoint, 0, len(ks))
	for _, k := range ks {
		speeds := make([]float64, p)
		for i := range speeds {
			speeds[i] = 1
			if i >= p/2 {
				speeds[i] = k
			}
		}
		pl, err := platform.FromSpeeds(speeds)
		if err != nil {
			return nil, err
		}
		hom := outer.Commhom(pl, n)
		het, err := outer.Commhet(pl, n)
		if err != nil {
			return nil, err
		}
		out = append(out, RhoPoint{
			K:             k,
			Measured:      hom.Volume / het.Volume,
			IdealBound:    outer.RhoLowerBound(k),
			SimpleBound:   math.Sqrt(k) - 1,
			AnalyticBound: outer.RhoAnalytic(pl),
		})
	}
	return out, nil
}

// RhoTable renders an E6 sweep.
func RhoTable(points []RhoPoint) *plot.Table {
	t := plot.NewTable("k", "measured ρ", "(1+k)/(1+√k)", "√k-1", "(4/7)·bound")
	for _, pt := range points {
		t.AddRowf(pt.K, pt.Measured, pt.IdealBound, pt.SimpleBound, pt.AnalyticBound)
	}
	return t
}

// PartitionQualityRow is one (distribution, p) cell of the E12 sweep.
type PartitionQualityRow struct {
	Dist      string
	P         int
	MeanRatio float64
	MaxRatio  float64
}

// PartitionQuality measures Ĉ/LB for the PERI-SUM partitioner across
// speed distributions and platform sizes — the paper's observation that
// the column-based algorithm does far better in practice (≈2%) than its
// 7/4 worst-case guarantee.
func PartitionQuality(ps []int, trials int, seed int64) ([]PartitionQualityRow, error) {
	dists := []stats.Distribution{
		stats.Constant{Value: 1},
		stats.Uniform{Lo: 1, Hi: 100},
		stats.LogNormal{Mu: 0, Sigma: 1},
	}
	root := stats.NewRNG(seed)
	var rows []PartitionQualityRow
	for _, d := range dists {
		for _, p := range ps {
			var w stats.Welford
			for trial := 0; trial < trials; trial++ {
				r := root.Split()
				areas := stats.SampleN(d, r, p)
				part, err := partition.PeriSum(areas)
				if err != nil {
					return nil, err
				}
				norm, err := partition.Normalize(areas)
				if err != nil {
					return nil, err
				}
				w.Add(part.SumHalfPerimeters() / partition.LowerBound(norm))
			}
			rows = append(rows, PartitionQualityRow{
				Dist: d.String(), P: p, MeanRatio: w.Mean(), MaxRatio: w.Max(),
			})
		}
	}
	return rows, nil
}

// PartitionQualityTable renders the E12 sweep.
func PartitionQualityTable(rows []PartitionQualityRow) *plot.Table {
	t := plot.NewTable("distribution", "p", "mean Ĉ/LB", "max Ĉ/LB")
	for _, r := range rows {
		t.AddRowf(r.Dist, r.P, r.MeanRatio, r.MaxRatio)
	}
	return t
}

// SortScalingRow is one N of the E3 sweep.
type SortScalingRow struct {
	N int
	// Fraction is log p / log N, the non-divisible share.
	Fraction float64
	// MaxBucketRatio is the measured MaxBucket/(N/p).
	MaxBucketRatio float64
	// Threshold is the Theorem B.4 bound on that ratio.
	Threshold float64
	// ModelSpeedup is the Section 3.1 cost model's speedup on p workers.
	ModelSpeedup float64
}

// SortScaling reproduces the Section 3 analysis: for growing N on p
// homogeneous workers, the non-divisible fraction and the bucket
// concentration both improve.
func SortScaling(ns []int, p int, seed int64) ([]SortScalingRow, error) {
	r := stats.NewRNG(seed)
	rows := make([]SortScalingRow, 0, len(ns))
	for _, n := range ns {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64()
		}
		_, tr, err := samplesort.Sort(xs, samplesort.Config{Workers: p, Seed: r.Int63(), Sequential: true})
		if err != nil {
			return nil, err
		}
		rows = append(rows, SortScalingRow{
			N:              n,
			Fraction:       samplesort.NonDivisibleFraction(n, p),
			MaxBucketRatio: tr.MaxBucketRatio(),
			Threshold:      samplesort.TheoremB4Threshold(n, p) / (float64(n) / float64(p)),
			ModelSpeedup:   samplesort.Cost(float64(n), p, 0).Speedup(),
		})
	}
	return rows, nil
}

// SortScalingTable renders the E3 sweep.
func SortScalingTable(rows []SortScalingRow, p int) *plot.Table {
	t := plot.NewTable("N", fmt.Sprintf("log p/log N (p=%d)", p), "max bucket ratio", "B.4 threshold", "model speedup")
	for _, r := range rows {
		t.AddRowf(r.N, r.Fraction, r.MaxBucketRatio, r.Threshold, r.ModelSpeedup)
	}
	return t
}

// MapReduceComparison reproduces E11: the menu of matmul data
// distributions for one problem size and one heterogeneous platform,
// scored by total communication volume (closed forms), with the ratios to
// the heterogeneity-aware layout.
func MapReduceComparison(n int, speeds []float64, gridR, gridC int) (*plot.Table, error) {
	part, err := partition.PeriSum(speeds)
	if err != nil {
		return nil, err
	}
	menu := mapreduce.CompareDistributions(n, gridR, gridC, part)
	het := menu[len(menu)-1].Volume
	t := plot.NewTable("distribution", "volume (elements)", "× vs heterogeneous")
	for _, d := range menu {
		t.AddRowf(d.Name, d.Volume, d.Volume/het)
	}
	return t, nil
}
