// Package dlt implements classical linear Divisible Load Theory on star
// platforms.
//
// A linear divisible load of total size N can be split arbitrarily: worker
// Pᵢ receiving a fraction αᵢ·N pays cᵢ·αᵢ·N to receive it and wᵢ·αᵢ·N to
// process it. The classical results reproduced here (Bharadwaj, Ghose,
// Mani, Robertazzi, "Scheduling Divisible Loads in Parallel and Distributed
// Systems", the paper's reference [9]) are the foundation the paper builds
// on — and whose extension to non-linear costs Section 2 proves futile
// (see package nldlt).
//
// Two communication models are supported:
//
//   - Parallel links (the paper's Section 1.2 model): all transfers may
//     proceed simultaneously. The optimal single-round allocation gives
//     each worker αᵢ ∝ 1/(cᵢ+wᵢ), and everyone finishes at the same time.
//   - One-port: the master emits to one worker at a time, in a chosen
//     order; worker i starts receiving only after workers before it in the
//     order are served. The optimal allocation again equalizes finish
//     times, via the recurrence α_{i+1}(c_{i+1}+w_{i+1}) = αᵢ·wᵢ, and the
//     optimal order serves workers by non-increasing bandwidth.
package dlt

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"nlfl/internal/dessim"
	"nlfl/internal/platform"
)

// Allocation is the result of a DLT allocation: the load fraction given to
// each worker (indexed like the platform), the predicted makespan, and,
// for one-port schedules, the emission order.
type Allocation struct {
	// Fractions[i] is αᵢ, worker i's share of the load; Σ αᵢ = 1.
	Fractions []float64
	// Makespan is the closed-form completion time for load N.
	Makespan float64
	// Order is the master's emission order (worker indices); nil for the
	// parallel-links model where ordering is irrelevant.
	Order []int
}

// LoadOf returns the absolute load αᵢ·N handed to worker i.
func (a Allocation) LoadOf(i int, n float64) float64 { return a.Fractions[i] * n }

// Validate checks that fractions are non-negative and sum to 1.
func (a Allocation) Validate() error {
	sum := 0.0
	for i, f := range a.Fractions {
		if f < -1e-12 || math.IsNaN(f) {
			return fmt.Errorf("dlt: fraction %d is %v", i, f)
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("dlt: fractions sum to %v, want 1", sum)
	}
	return nil
}

// OptimalParallel returns the optimal single-round allocation of a linear
// load of size n under the parallel-links model. Worker i's finish time is
// αᵢ·n·(cᵢ + wᵢ); minimizing the maximum over the αᵢ (with Σαᵢ = 1) makes
// all finish times equal, giving αᵢ ∝ 1/(cᵢ+wᵢ) and makespan
// n / Σ 1/(cᵢ+wᵢ).
func OptimalParallel(p *platform.Platform, n float64) (Allocation, error) {
	if n < 0 {
		return Allocation{}, errors.New("dlt: negative load")
	}
	inv := make([]float64, p.P())
	sum := 0.0
	for i := 0; i < p.P(); i++ {
		w := p.Worker(i)
		ci := 1 / w.Bandwidth
		wi := 1 / w.Speed
		inv[i] = 1 / (ci + wi)
		sum += inv[i]
	}
	fr := make([]float64, p.P())
	for i := range fr {
		fr[i] = inv[i] / sum
	}
	return Allocation{Fractions: fr, Makespan: n / sum}, nil
}

// EqualSplit returns the naive allocation αᵢ = 1/p (the allocation the
// paper analyzes for the homogeneous non-linear case in Section 2), with
// the makespan it achieves on a linear load under parallel links.
func EqualSplit(p *platform.Platform, n float64) Allocation {
	fr := make([]float64, p.P())
	ms := 0.0
	for i := range fr {
		fr[i] = 1 / float64(p.P())
		w := p.Worker(i)
		t := w.CommTime(fr[i]*n) + w.LinearCompTime(fr[i]*n)
		if t > ms {
			ms = t
		}
	}
	return Allocation{Fractions: fr, Makespan: ms}
}

// BestOnePortOrder returns the worker emission order that minimizes the
// one-port makespan: by non-increasing bandwidth (non-decreasing cᵢ), the
// classical DLT ordering result. Ties break by worker index.
func BestOnePortOrder(p *platform.Platform) []int {
	order := make([]int, p.P())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return p.Worker(order[a]).Bandwidth > p.Worker(order[b]).Bandwidth
	})
	return order
}

// OptimalOnePort returns the optimal single-round allocation of a linear
// load of size n when the master serves workers sequentially in the given
// order (defaulting to BestOnePortOrder when order is nil). All
// participating workers finish simultaneously; the fractions follow the
// recurrence α_{next}·(c_next + w_next) = α_prev·w_prev.
func OptimalOnePort(p *platform.Platform, n float64, order []int) (Allocation, error) {
	if n < 0 {
		return Allocation{}, errors.New("dlt: negative load")
	}
	if order == nil {
		order = BestOnePortOrder(p)
	}
	if len(order) != p.P() {
		return Allocation{}, fmt.Errorf("dlt: order has %d entries for %d workers", len(order), p.P())
	}
	seen := make([]bool, p.P())
	for _, idx := range order {
		if idx < 0 || idx >= p.P() || seen[idx] {
			return Allocation{}, fmt.Errorf("dlt: order is not a permutation: %v", order)
		}
		seen[idx] = true
	}
	// Express every αᵢ relative to the first worker in the order:
	// rel[0] = 1, rel[k] = rel[k-1]·w_{k-1}/(c_k + w_k); then normalize.
	rel := make([]float64, len(order))
	rel[0] = 1
	for k := 1; k < len(order); k++ {
		prev := p.Worker(order[k-1])
		cur := p.Worker(order[k])
		wPrev := 1 / prev.Speed
		cCur := 1 / cur.Bandwidth
		wCur := 1 / cur.Speed
		rel[k] = rel[k-1] * wPrev / (cCur + wCur)
	}
	total := 0.0
	for _, r := range rel {
		total += r
	}
	fr := make([]float64, p.P())
	for k, idx := range order {
		fr[idx] = rel[k] / total
	}
	first := p.Worker(order[0])
	makespan := fr[order[0]] * n * (1/first.Bandwidth + 1/first.Speed)
	out := Allocation{Fractions: fr, Makespan: makespan, Order: append([]int(nil), order...)}
	return out, nil
}

// Chunks converts an allocation into simulator chunks for a linear load of
// size n (Work = Data). For one-port allocations the chunks follow the
// emission order; otherwise worker order.
func Chunks(a Allocation, n float64) []dessim.Chunk {
	idxs := a.Order
	if idxs == nil {
		idxs = make([]int, len(a.Fractions))
		for i := range idxs {
			idxs[i] = i
		}
	}
	chunks := make([]dessim.Chunk, 0, len(idxs))
	for _, i := range idxs {
		d := a.Fractions[i] * n
		chunks = append(chunks, dessim.Chunk{Worker: i, Data: d, Work: d})
	}
	return chunks
}
