package runtime

import (
	"math"
	"time"
)

// tokenBucket throttles one worker goroutine to a configured work rate.
// Tokens are cell updates; the bucket refills continuously at `rate`
// tokens per second up to `burst`. acquire is called by exactly one
// goroutine, so no locking is needed.
//
// The bucket admits debt: a chunk larger than the burst drains the bucket
// negative and the next acquire pays the balance in sleep time, keeping
// the *long-run* rate exact without splitting chunks.
type tokenBucket struct {
	rate   float64 // tokens per second
	burst  float64 // cap on accumulated idle credit
	tokens float64
	last   time.Time
}

// newTokenBucket builds a bucket refilling at rate tokens/second. A
// non-positive burst defaults to 5 ms of credit, enough to smooth
// scheduler jitter without letting a worker run far ahead of its speed.
func newTokenBucket(rate, burst float64) *tokenBucket {
	if burst <= 0 {
		burst = rate * 0.005
	}
	return &tokenBucket{rate: rate, burst: burst, tokens: burst, last: time.Now()}
}

// acquire blocks until n tokens are available and consumes them.
func (tb *tokenBucket) acquire(n float64) { tb.acquireWithin(n, -1) }

// acquireWithin is acquire with a deadline: it consumes n tokens and
// returns true if they can be paid for within `budget` of sleeping, or
// sleeps exactly the budget and returns false — the chunk was cut short.
// A negative budget means no deadline. The chaos layer uses the budget to
// realize crashes mid-compute: the worker pays tokens toward the chunk
// until its crash instant lands, then dies with the chunk unfinished.
func (tb *tokenBucket) acquireWithin(n float64, budget time.Duration) bool {
	now := time.Now()
	tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
	tb.last = now
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
	if tb.tokens < n {
		wait := time.Duration((n - tb.tokens) / tb.rate * float64(time.Second))
		interrupted := budget >= 0 && wait > budget
		if interrupted {
			wait = budget
		}
		time.Sleep(wait)
		now = time.Now()
		tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
		tb.last = now
		// The post-sleep refill must honor the burst cap too: the OS
		// routinely oversleeps, and without this clamp the overshoot
		// banks as unbounded credit that lets the worker burst far
		// ahead of its configured rate on subsequent acquires. Credit
		// beyond max(n, burst) is forfeited — a worker can be late,
		// never early.
		if lim := math.Max(n, tb.burst); tb.tokens > lim {
			tb.tokens = lim
		}
		if interrupted {
			// The partial payment is forfeited with the chunk: whoever
			// re-runs it pays the full area again (lost work, not a
			// discount), and this bucket keeps only its clamped balance.
			return false
		}
	}
	tb.tokens -= n
	return true
}
