package capacity

import (
	"math"
	"testing"
)

func TestFromObservedEquivalentToNominal(t *testing.T) {
	nominal := benchModel()
	// Measured rates exactly at nominal: speedᵢ·R as absolute rates.
	rates := make([]float64, len(nominal.Speeds))
	for i, s := range nominal.Speeds {
		rates[i] = s * nominal.WorkPerSecond
	}
	observed, err := FromObserved(nominal.Alpha, nominal.N, rates, nominal.Bandwidth)
	if err != nil {
		t.Fatal(err)
	}
	for p := 1; p <= len(rates); p++ {
		a, err := nominal.PredictSlice(p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := observed.PredictSlice(p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a.Makespan-b.Makespan) > 1e-9*a.Makespan {
			t.Fatalf("p=%d: nominal makespan %v vs observed %v", p, a.Makespan, b.Makespan)
		}
	}
}

func TestFromObservedDriftMovesKnee(t *testing.T) {
	nominal := benchModel()
	rates := make([]float64, len(nominal.Speeds))
	for i, s := range nominal.Speeds {
		rates[i] = s * nominal.WorkPerSecond
	}
	healthy, err := FromObserved(nominal.Alpha, nominal.N, rates, nominal.Bandwidth)
	if err != nil {
		t.Fatal(err)
	}
	// The whole fleet has drifted to a quarter of its nominal compute
	// rate (thermal throttling, noisy neighbours) while the link is
	// unchanged: compute is now cheaper to add relative to shipping, so
	// planning against nominal speeds overbuys workers. The knee from
	// measured rates must differ from the nominal-speed knee.
	drifted := make([]float64, len(rates))
	for i, r := range rates {
		drifted[i] = r / 4
	}
	slow, err := FromObserved(nominal.Alpha, nominal.N, drifted, nominal.Bandwidth)
	if err != nil {
		t.Fatal(err)
	}
	const theta = 0.05
	h, err := healthy.Recommend(theta)
	if err != nil {
		t.Fatal(err)
	}
	s, err := slow.Recommend(theta)
	if err != nil {
		t.Fatal(err)
	}
	if h.Knee == s.Knee {
		t.Fatalf("uniform 4× compute drift left the knee at %d; the feedback path is not observable", h.Knee)
	}
	if s.Knee < h.Knee {
		t.Fatalf("slower compute should tolerate MORE workers before the link dominates: healthy knee %d, drifted knee %d", h.Knee, s.Knee)
	}
}

func TestFromObservedRejectsBadRates(t *testing.T) {
	cases := [][]float64{
		nil,
		{},
		{1e4, 0},
		{1e4, -3},
		{1e4, math.NaN()},
		{1e4, math.Inf(1)},
	}
	for i, rates := range cases {
		if _, err := FromObserved(2, 96, rates, 1e4); err == nil {
			t.Fatalf("case %d: accepted rates %v", i, rates)
		}
	}
}
