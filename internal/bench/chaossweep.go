package bench

import (
	"context"
	"fmt"
	"math"
	goruntime "runtime"

	"nlfl/internal/faults"
	"nlfl/internal/platform"
	"nlfl/internal/results"
	nrt "nlfl/internal/runtime"
	"nlfl/internal/stats"
	"nlfl/internal/trace"
)

// The chaos sweep runs a fixed envelope rather than the Config knobs:
// every scenario's crash instants, fault windows, retry budgets and
// speculation thresholds are calibrated against this rate and size so
// the fault lands mid-run (not after an instant drain, not after the
// pool already finished). chaosN=128 keeps a het-1357 chunk around 50 ms
// at chaosRate, so a 15 ms crash is reliably mid-chunk.
const (
	chaosN    = 128
	chaosRate = 2e4
	// chaosVolTolerance is the acceptance gate on the volume ledger: the
	// committed volume must match the survivor-re-planned plan volume to
	// within 5%. The executor actually achieves exact equality (both are
	// integer-valued element counts), so the gate has real slack only for
	// future executors that ship partial chunks.
	chaosVolTolerance = 0.05
)

// chaosCase is one fault scenario the sweep injects.
type chaosCase struct {
	class    string // "crash", "crash-t0", "straggler", "flaky-link"
	strategy string // "het" exercises re-planning, "hom" the shared queue
	chaos    nrt.Chaos
}

// chaosCases returns one scenario per fault class. Crash scenarios run
// the het strategy so recovery exercises the survivor re-plan (the dead
// worker's rectangle is re-split by PERI-SUM over the survivors);
// straggler and flaky-link run hom so recovery exercises speculation and
// retry against the shared sharded queue.
func chaosCases() []chaosCase {
	return []chaosCase{
		{
			class:    "crash",
			strategy: "het",
			// Worker p-1 (the fastest, largest rectangle) dies mid-chunk.
			chaos: nrt.Chaos{Scenario: faults.SingleCrash(3, 0.015), MaxRetries: 4},
		},
		{
			class:    "crash-t0",
			strategy: "het",
			// The edge case: death before the first transfer. Recovery is
			// pure backlog reclamation — no in-flight lease exists yet.
			chaos: nrt.Chaos{Scenario: faults.SingleCrash(3, 0), MaxRetries: 4},
		},
		{
			class:    "straggler",
			strategy: "hom",
			chaos: nrt.Chaos{
				Scenario: faults.Scenario{Events: []faults.Event{
					// Worker 0 computes at quarter speed for the whole run;
					// speculation re-issues its stale chunk to an idle peer.
					{Kind: faults.Straggler, Worker: 0, Time: 0, Until: 1, Factor: 0.25},
				}},
				SpeculateAfter: 0.06,
			},
		},
		{
			class:    "flaky-link",
			strategy: "hom",
			chaos: nrt.Chaos{
				Scenario: faults.Scenario{Events: []faults.Event{
					// Every transfer to worker 0 in the first 80 ms is lost:
					// deterministic retry counts regardless of the drop RNG.
					{Kind: faults.LinkDrop, Worker: 0, Time: 0, Until: 0.08, DropProb: 1},
				}},
				MaxRetries:  8,
				BackoffBase: 0.005,
				BackoffMax:  0.04,
			},
		},
	}
}

func chaosPlatforms(quick bool) []benchPlatform {
	ps := []benchPlatform{{"het-1357-p4", []float64{1, 3, 5, 7}}}
	if !quick {
		ps = append(ps, benchPlatform{"het-1224-p4", []float64{1, 2, 2, 4}})
	}
	return ps
}

// RunChaosSweep executes one scenario per fault class through the real
// worker pool with the chaos layer armed, audits every trace with the
// exactly-once oracle, cross-checks the volume ledger against the
// survivor-re-planned plan, and returns the BENCH_chaos payload. A
// scenario the pool does not survive — or survives with a dirty ledger —
// is an error, not a data point. A cancelled ctx aborts the in-flight
// run and stops the sweep.
func RunChaosSweep(ctx context.Context, cfg Config) (results.ChaosBenchFile, error) {
	file := results.ChaosBenchFile{
		Schema:        results.BenchChaosSchema,
		Seed:          cfg.Seed,
		Quick:         cfg.Quick,
		WorkPerSecond: chaosRate,
		GoVersion:     goruntime.Version(),
		GOMAXPROCS:    maxProcs(),
	}
	r := stats.NewRNG(cfg.Seed)
	a := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, chaosN)
	b := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, chaosN)

	for _, bp := range chaosPlatforms(cfg.Quick) {
		pl, err := platform.FromSpeeds(bp.speeds)
		if err != nil {
			return file, err
		}
		for _, cc := range chaosCases() {
			if err := ctx.Err(); err != nil {
				return file, err
			}
			var plan *nrt.StrategyPlan
			if cc.strategy == "het" {
				plan, err = nrt.PlanHet(pl, chaosN)
			} else {
				plan, err = nrt.PlanHom(pl, chaosN)
			}
			if err != nil {
				return file, fmt.Errorf("bench: %s/%s plan: %w", bp.name, cc.class, err)
			}
			rep, err := nrt.RunContext(ctx, plan, a, b, nrt.Options{
				Speeds:        bp.speeds,
				WorkPerSecond: chaosRate,
				// Burst 1: no banked credit, so every worker pays honest
				// token time and the calibrated fault windows land mid-run.
				Burst:       1,
				VerifyEvery: 509,
				Chaos:       cc.chaos,
			})
			if err != nil {
				return file, fmt.Errorf("bench: %s/%s: pool did not survive: %w", bp.name, cc.class, err)
			}
			violations := trace.Check(rep.Trace, rep.Expect(1e-9))
			if len(violations) > 0 {
				return file, fmt.Errorf("bench: %s/%s trace violations: %v", bp.name, cc.class, trace.Must(violations))
			}
			file.Entries = append(file.Entries, results.ChaosBenchEntry{
				Class: cc.class, Platform: bp.name, Speeds: bp.speeds,
				Strategy: rep.Strategy, N: chaosN, Workers: rep.Workers, Chunks: rep.Chunks,
				PlanVolume:      rep.PlanVolume,
				ReplannedVolume: rep.ReplannedVolume,
				CommittedVolume: rep.CommittedVolume,
				MeasuredVolume:  rep.DataVolume,
				WastedData:      rep.WastedData,
				Makespan:        rep.Makespan,
				RetriedChunks:   rep.RetriedChunks,
				SpeculativeWins: rep.SpeculativeWins,
				DegradedWorkers: rep.DegradedWorkers,
				ReclaimedCells:  rep.ReclaimedCells,
				Violations:      0,
			})
		}
	}
	return file, nil
}

// ValidateChaos is the schema check for a BENCH_chaos payload: right
// schema id, one entry per fault class, finite fields, zero invariant
// violations, the committed volume within 5% of the survivor-re-planned
// plan volume, an exact shipped = committed + wasted ledger, and — per
// class — nonzero recovery counters proving the scenario actually bit
// (a chaos sweep that injected nothing would pass every other gate).
func ValidateChaos(f results.ChaosBenchFile) error {
	const path = ChaosFileName
	if f.Schema != results.BenchChaosSchema {
		return invalid(path, "schema %q, want %q", f.Schema, results.BenchChaosSchema)
	}
	if len(f.Entries) == 0 {
		return invalid(path, "no entries")
	}
	if !finite(f.WorkPerSecond) || f.WorkPerSecond <= 0 {
		return invalid(path, "non-positive work rate %v", f.WorkPerSecond)
	}
	for i, e := range f.Entries {
		id := fmt.Sprintf("entry %d (%s %s/%s n=%d)", i, e.Class, e.Platform, e.Strategy, e.N)
		if e.Class == "" || e.Platform == "" || e.Strategy == "" || e.N <= 0 || e.Workers <= 0 || e.Chunks <= 0 {
			return invalid(path, "%s: missing identity fields", id)
		}
		if len(e.Speeds) != e.Workers {
			return invalid(path, "%s: %d speeds for %d workers", id, len(e.Speeds), e.Workers)
		}
		for _, v := range []struct {
			name  string
			value float64
		}{
			{"planVolume", e.PlanVolume},
			{"replannedVolume", e.ReplannedVolume},
			{"committedVolume", e.CommittedVolume},
			{"measuredVolume", e.MeasuredVolume},
			{"wastedData", e.WastedData},
			{"makespan", e.Makespan},
			{"reclaimedCells", e.ReclaimedCells},
		} {
			if !finite(v.value) {
				return invalid(path, "%s: non-finite %s %v", id, v.name, v.value)
			}
		}
		if e.PlanVolume <= 0 {
			return invalid(path, "%s: zero plan volume", id)
		}
		if e.ReplannedVolume < e.PlanVolume {
			return invalid(path, "%s: replanned volume %v below plan volume %v", id, e.ReplannedVolume, e.PlanVolume)
		}
		if rel := math.Abs(e.CommittedVolume-e.ReplannedVolume) / e.ReplannedVolume; rel > chaosVolTolerance {
			return invalid(path, "%s: committed volume off the re-planned plan by %.4f (> %.2f)", id, rel, chaosVolTolerance)
		}
		if diff := math.Abs(e.MeasuredVolume - (e.CommittedVolume + e.WastedData)); diff > 1e-6*math.Max(1, e.MeasuredVolume) {
			return invalid(path, "%s: shipped %v ≠ committed %v + wasted %v", id, e.MeasuredVolume, e.CommittedVolume, e.WastedData)
		}
		if e.WastedData > 0.5*e.MeasuredVolume {
			return invalid(path, "%s: waste fraction %.2f above 0.5 — recovery thrashing", id, e.WastedData/e.MeasuredVolume)
		}
		if e.Makespan <= 0 {
			return invalid(path, "%s: zero makespan", id)
		}
		switch e.Class {
		case "crash", "crash-t0":
			if e.DegradedWorkers < 1 || e.ReclaimedCells <= 0 {
				return invalid(path, "%s: crash scenario left no trace (degraded %d, reclaimed %v)",
					id, e.DegradedWorkers, e.ReclaimedCells)
			}
		case "straggler":
			if e.SpeculativeWins < 1 {
				return invalid(path, "%s: straggler scenario produced no speculative win", id)
			}
		case "flaky-link":
			if e.RetriedChunks < 1 {
				return invalid(path, "%s: flaky-link scenario produced no retry", id)
			}
		default:
			return invalid(path, "%s: unknown fault class %q", id, e.Class)
		}
		if e.Violations != 0 {
			return invalid(path, "%s: %d invariant violations", id, e.Violations)
		}
	}
	return nil
}
