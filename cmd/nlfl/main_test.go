package main

import (
	"os"
	"strings"
	"testing"
)

// capture redirects stdout while f runs and returns what was printed.
func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		buf := make([]byte, 0, 1<<16)
		tmp := make([]byte, 4096)
		for {
			n, err := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				break
			}
		}
		done <- string(buf)
	}()
	runErr := f()
	w.Close()
	os.Stdout = old
	out := <-done
	return out, runErr
}

func TestCLISubcommands(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want []string // substrings that must appear
	}{
		{"help", []string{"help"}, []string{"commands:", "fig4", "affinity"}},
		{"nonlinear", []string{"nonlinear", "-ps", "2,10"}, []string{"no free lunch", "0.9"}},
		{"analyze", []string{"analyze", "-kind", "power", "-alpha", "2", "-p", "100"},
			[]string{"not-divisible", "0.9900"}},
		{"analyze sort", []string{"analyze", "-kind", "sort", "-n", "1048576", "-p", "32"},
			[]string{"almost-divisible"}},
		{"rho", []string{"rho", "-ks", "1,16"}, []string{"measured ρ", "3.4"}},
		{"partition", []string{"partition", "-trials", "3"}, []string{"Ĉ/LB", "uniform[1,100]"}},
		{"outer", []string{"outer", "-p", "6"}, []string{"hom/k", "het:", "plan for"}},
		{"matmul", []string{"matmul", "-n", "32"}, []string{"naive kernel: true", "block-cyclic", "rect"}},
		{"mapreduce", []string{"mapreduce", "-demo", "6"}, []string{"naive-pairs", "correct=true"}},
		{"fig2", []string{"fig2", "-p", "4", "-w", "24", "-h", "8"}, []string{"half-perimeter", "+"}},
		{"affinity", []string{"affinity", "-p", "4", "-g", "10"},
			[]string{"no-cache", "cache", "affinity", "granularities"}},
		{"fig4 small", []string{"fig4", "-trials", "3", "-pmax", "20"},
			[]string{"Comm_het", "Comm_hom/k"}},
		{"fig4 csv", []string{"fig4", "-trials", "2", "-pmax", "10", "-csv"},
			[]string{"x,Comm_het"}},
		{"sort", []string{"sort", "-trials", "2"}, []string{"Theorem B.4", "log p/log N"}},
		{"bottleneck", []string{"bottleneck", "-p", "6"}, []string{"bandwidth", "Comm_hom/k"}},
		{"mrdlt", []string{"mrdlt", "-p", "4"}, []string{"equal split", "optimized", "speedup"}},
		{"polymul", []string{"polymul", "-n", "64"}, []string{"schoolbook", "karatsuba", "fft", "almost-divisible"}},
		{"adaptivity", []string{"adaptivity", "-p", "4", "-blocks", "64"},
			[]string{"residual speed", "static DLT", "demand-driven"}},
		{"gantt", []string{"gantt", "-p", "4", "-w", "40"}, []string{"#", "accomplishes"}},
		{"tree", []string{"tree", "-depth", "2", "-fanout", "2"},
			[]string{"nodes", "topology-free", "α=2"}},
		{"returns", []string{"returns", "-trials", "20"},
			[]string{"FIFO", "LIFO", "dominates"}},
		{"faults crash", []string{"faults", "-scenario", "crash", "-p", "6", "-tasks", "36", "-seed", "3"},
			[]string{"permanent crashes", "inflation", "dltLost", "vs bound", "in-flight chunks"}},
		{"faults straggler", []string{"faults", "-scenario", "straggler", "-p", "5", "-tasks", "30", "-seed", "2"},
			[]string{"slowed to 5%", "speculation", "backups", "no-free-lunch"}},
		{"faults flaky-link", []string{"faults", "-scenario", "flaky-link", "-p", "4", "-tasks", "24", "-seed", "4"},
			[]string{"drops 70%", "retries", "exponential backoff", "extraComm"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			out, err := capture(t, func() error { return run(c.args) })
			if err != nil {
				t.Fatalf("run(%v): %v", c.args, err)
			}
			for _, want := range c.want {
				if !strings.Contains(out, want) {
					t.Errorf("output missing %q:\n%s", want, truncate(out, 800))
				}
			}
		})
	}
}

func TestCLIErrors(t *testing.T) {
	cases := [][]string{
		{"nope"},
		{"fig4", "-dist", "bogus"},
		{"nonlinear", "-alphas", "x"},
		{"nonlinear", "-ps", "x"},
		{"analyze", "-kind", "bogus"},
		{"rho", "-p", "7"},
		{"faults", "-scenario", "bogus"},
		{"faults", "-dist", "bogus"},
	}
	for _, args := range cases {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestCLIFlagHelpDoesNotError(t *testing.T) {
	// flag.ContinueOnError returns flag.ErrHelp for -h; the command should
	// surface it as an error without panicking.
	_, err := capture(t, func() error { return run([]string{"fig4", "-h"}) })
	if err == nil {
		t.Log("fig4 -h returned nil (accepted)") // flag prints usage either way
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

func TestCLISaveAndCompare(t *testing.T) {
	dir := t.TempDir()
	a := dir + "/a.json"
	b := dir + "/b.json"
	if _, err := capture(t, func() error {
		return run([]string{"fig4", "-trials", "2", "-pmax", "10", "-out", a})
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := capture(t, func() error {
		return run([]string{"fig4", "-trials", "2", "-pmax", "10", "-out", b})
	}); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error { return run([]string{"compare", a, b}) })
	if err != nil {
		t.Fatalf("identical records should compare clean: %v\n%s", err, out)
	}
	if !strings.Contains(out, "agree") {
		t.Errorf("missing agreement message:\n%s", out)
	}
	// A different run must be detected.
	c := dir + "/c.json"
	if _, err := capture(t, func() error {
		return run([]string{"fig4", "-trials", "3", "-pmax", "10", "-out", c})
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := capture(t, func() error { return run([]string{"compare", "-tol", "0.0001", a, c}) }); err == nil {
		t.Error("differing records should fail the comparison")
	}
	// Usage errors.
	if _, err := capture(t, func() error { return run([]string{"compare", a}) }); err == nil {
		t.Error("missing operand should fail")
	}
	if _, err := capture(t, func() error { return run([]string{"compare", a, dir + "/absent.json"}) }); err == nil {
		t.Error("missing file should fail")
	}
}

// Golden-style determinism: the same seed must reproduce byte-identical
// fault records for every scenario, and a different seed must not.
func TestCLIFaultsRecordsDeterministic(t *testing.T) {
	dir := t.TempDir()
	for _, scenario := range []string{"crash", "straggler", "flaky-link"} {
		a := dir + "/" + scenario + "-a.json"
		b := dir + "/" + scenario + "-b.json"
		for _, path := range []string{a, b} {
			if out, err := capture(t, func() error {
				return run([]string{"faults", "-scenario", scenario, "-p", "5", "-tasks", "20", "-seed", "7", "-out", path})
			}); err != nil {
				t.Fatalf("%s: %v\n%s", scenario, err, out)
			}
		}
		ra, err := os.ReadFile(a)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := os.ReadFile(b)
		if err != nil {
			t.Fatal(err)
		}
		if string(ra) != string(rb) {
			t.Errorf("%s: same seed produced different records", scenario)
		}
		if out, err := capture(t, func() error { return run([]string{"compare", a, b}) }); err != nil {
			t.Errorf("%s: self-compare failed: %v\n%s", scenario, err, out)
		}
	}
	// A different seed shifts the crash pattern.
	c := dir + "/crash-c.json"
	if _, err := capture(t, func() error {
		return run([]string{"faults", "-scenario", "crash", "-p", "5", "-tasks", "20", "-seed", "8", "-out", c})
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := capture(t, func() error {
		return run([]string{"compare", "-tol", "0.0001", dir + "/crash-a.json", c})
	}); err == nil {
		t.Error("different seeds should produce differing crash records")
	}
}

func TestCLIAll(t *testing.T) {
	dir := t.TempDir()
	out, err := capture(t, func() error {
		return run([]string{"all", "-outdir", dir, "-trials", "3"})
	})
	if err != nil {
		t.Fatalf("all: %v\n%s", err, out)
	}
	for _, want := range []string{
		"e1-nonlinear.json", "fig4-uniform.json", "e12-partition-quality.json",
		"ext-affinity.json", "ext-bottleneck.json", "ext-faults.json",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("all output missing %q", want)
		}
		if _, err := os.Stat(dir + "/" + want); err != nil {
			t.Errorf("record %s not written: %v", want, err)
		}
	}
	// The saved records must load and self-compare clean.
	if _, err := capture(t, func() error {
		return run([]string{"compare", dir + "/e6-rho.json", dir + "/e6-rho.json"})
	}); err != nil {
		t.Errorf("self-compare failed: %v", err)
	}
}
