package samplesort_test

import (
	"fmt"
	"slices"

	"nlfl/internal/samplesort"
)

// Sample sort is a drop-in parallel sort; the trace exposes the phase
// structure of the paper's Figure 1.
func ExampleSort() {
	xs := []int{9, 3, 7, 1, 8, 2, 6, 4, 5, 0}
	sorted, tr, _ := samplesort.Sort(xs, samplesort.Config{Workers: 2, Seed: 1})
	fmt.Println(slices.IsSorted(sorted), len(tr.BucketSizes))
	// Output: true 2
}

// The share of sorting work that resists parallelization is log p/log N.
func ExampleNonDivisibleFraction() {
	fmt.Printf("%.2f\n", samplesort.NonDivisibleFraction(1<<20, 32))
	// Output: 0.25
}
