package bench

import (
	"errors"
	"testing"

	"nlfl/internal/results"
)

// goodTopologyFile builds a minimal well-formed BENCH_topology payload:
// het beats hom by the threshold on the star, never on the chain, and
// the second source makes two-source hom faster than star hom.
func goodTopologyFile() results.TopologyBenchFile {
	star := func(strat string, mk float64) results.TopologyBenchEntry {
		return results.TopologyBenchEntry{
			Platform: "p", Speeds: []float64{1, 3}, Topology: "star", Strategy: strat,
			N: 8, Bandwidth: 1e4, MeasuredVolume: 32, PredictedVolume: 32,
			Makespan: mk, CommTime: mk / 2, OverlapFraction: 0.4,
			Edges: []results.TopologyEdge{{Name: "master-port", Capacity: 1e4, Volume: 32, Utilization: 0.5}},
		}
	}
	chain := func(strat string, mk float64) results.TopologyBenchEntry {
		return results.TopologyBenchEntry{
			Platform: "p", Speeds: []float64{1, 3}, Topology: "chain", Strategy: strat,
			N: 8, Bandwidth: 1e4, MeasuredVolume: 32, PredictedVolume: 32,
			RelayVolume: 12, Makespan: mk, CommTime: mk / 2, OverlapFraction: 0.4,
			Edges: []results.TopologyEdge{
				{Name: "hop-0", Capacity: 1e4, Volume: 32, Utilization: 0.5},
				{Name: "hop-1", Capacity: 1e4, Volume: 12, Utilization: 0.3},
			},
		}
	}
	twoSource := func(strat string, mk float64) results.TopologyBenchEntry {
		return results.TopologyBenchEntry{
			Platform: "p", Speeds: []float64{1, 3}, Topology: "two-source", Strategy: strat,
			N: 8, Bandwidth: 1e4, MeasuredVolume: 32, PredictedVolume: 32,
			Makespan: mk, CommTime: mk / 2, OverlapFraction: 0.4,
			Edges: []results.TopologyEdge{
				{Name: "source-0", Capacity: 1e4, Volume: 20, Utilization: 0.5},
				{Name: "source-1", Capacity: 1e4, Volume: 12, Utilization: 0.3},
			},
		}
	}
	return results.TopologyBenchFile{
		Schema: results.BenchTopologySchema, WorkPerSecond: 2e5,
		CrossoverThreshold: 0.7,
		Crossovers:         map[string]float64{"star": 1e4, "chain": 0, "two-source": 0},
		Entries: []results.TopologyBenchEntry{
			star("hom", 0.2), star("het", 0.1), // 0.1 < 0.7·0.2: het wins
			chain("hom", 0.2), chain("het", 0.19), // no win
			twoSource("hom", 0.15), twoSource("het", 0.14), // faster than star hom, no win
		},
	}
}

func TestValidateTopologyRejectsBrokenFiles(t *testing.T) {
	if err := ValidateTopology(goodTopologyFile()); err != nil {
		t.Fatalf("well-formed topology file rejected: %v", err)
	}
	for name, mutate := range map[string]func(*results.TopologyBenchFile){
		"wrong-schema":    func(f *results.TopologyBenchFile) { f.Schema = "wrong" },
		"no-entries":      func(f *results.TopologyBenchFile) { f.Entries = nil },
		"bad-threshold":   func(f *results.TopologyBenchFile) { f.CrossoverThreshold = 1.2 },
		"zero-bandwidth":  func(f *results.TopologyBenchFile) { f.Entries[0].Bandwidth = 0 },
		"overlap-above-1": func(f *results.TopologyBenchFile) { f.Entries[0].OverlapFraction = 1.5 },
		"violations":      func(f *results.TopologyBenchFile) { f.Entries[0].Violations = 1 },
		"no-edge-rows":    func(f *results.TopologyBenchFile) { f.Entries[0].Edges = nil },
		"util-above-1":    func(f *results.TopologyBenchFile) { f.Entries[0].Edges[0].Utilization = 2 },
		"chain-no-relay":  func(f *results.TopologyBenchFile) { f.Entries[3].RelayVolume = 0 },
		"chain-nonmonotone": func(f *results.TopologyBenchFile) {
			// Also keep the ledger closed so only monotonicity trips.
			f.Entries[3].Edges[0].Volume = 12
			f.Entries[3].Edges[1].Volume = 32
		},
		"chain-ledger-leak": func(f *results.TopologyBenchFile) { f.Entries[3].Edges[1].Volume = 20 },
		"star-with-relay":   func(f *results.TopologyBenchFile) { f.Entries[0].RelayVolume = 5 },
		"crossover-mismatch": func(f *results.TopologyBenchFile) {
			f.Crossovers["star"] = 0
		},
		"no-star-crossover": func(f *results.TopologyBenchFile) {
			f.Entries[1].Makespan = 0.19 // het no longer wins anywhere
			f.Crossovers["star"] = 0
		},
		"chain-crossover-appears": func(f *results.TopologyBenchFile) {
			f.Entries[3].Makespan = 0.05 // chain het suddenly wins
			f.Crossovers["chain"] = 1e4
		},
		"two-source-not-faster": func(f *results.TopologyBenchFile) {
			f.Entries[4].Makespan = 0.25 // behind star hom despite two sources
			f.Entries[5].Makespan = 0.2  // keep het short of the threshold
		},
	} {
		f := goodTopologyFile()
		mutate(&f)
		if err := ValidateTopology(f); !errors.Is(err, ErrInvalidBench) {
			t.Errorf("topology %s: broken file accepted: %v", name, err)
		}
	}
}
