package results

import (
	"encoding/json"
	"fmt"
	"os"
)

// Bench schema identifiers, bumped on breaking field changes so consumers
// (CI's bench-smoke job, the performance trajectory) can reject files they
// do not understand.
const (
	BenchKernelsSchema = "nlfl/bench-kernels/v1"
	BenchRuntimeSchema = "nlfl/bench-runtime/v1"
	BenchLinkSchema    = "nlfl/bench-link/v1"
)

// KernelBenchEntry is one measured kernel configuration.
type KernelBenchEntry struct {
	// Kernel names the code path ("naive", "blocked", "tiled",
	// "parallel-tiled", "vector-outer", "outer-into").
	Kernel string `json:"kernel"`
	// N is the matrix/vector side.
	N int `json:"n"`
	// Tile is the block side used (0 when the kernel is untiled).
	Tile int `json:"tile,omitempty"`
	// Workers is the goroutine count (0 for single-threaded kernels).
	Workers int `json:"workers,omitempty"`
	// Seconds is the best-of-reps wall time of one full kernel run.
	Seconds float64 `json:"seconds"`
	// GFLOPS is the implied rate: 2N³ flops for matmul kernels, N² for
	// outer-product kernels, divided by Seconds.
	GFLOPS float64 `json:"gflops"`
	// MaxAbsErr is the largest element-wise deviation from the naive
	// reference on the same inputs (0 for the reference itself).
	MaxAbsErr float64 `json:"maxAbsErr"`
	// Checked records that the equivalence check ran and passed.
	Checked bool `json:"checked"`
}

// KernelBenchFile is the BENCH_kernels.json payload.
type KernelBenchFile struct {
	Schema string `json:"schema"`
	// Seed is the RNG seed the inputs were generated from.
	Seed int64 `json:"seed"`
	// Quick marks the reduced CI configuration.
	Quick bool `json:"quick"`
	// GoVersion and GOMAXPROCS pin the measurement environment.
	GoVersion  string `json:"goVersion"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// AutotunedTile is the tile side the probe selected on this machine.
	AutotunedTile int                `json:"autotunedTile"`
	Entries       []KernelBenchEntry `json:"entries"`
}

// RuntimeBenchEntry is one measured strategy execution.
type RuntimeBenchEntry struct {
	// Platform names the speed profile, Speeds lists it.
	Platform string    `json:"platform"`
	Speeds   []float64 `json:"speeds"`
	// Strategy is "hom", "hom/k" or "het"; Grid and K echo the plan.
	Strategy string `json:"strategy"`
	Grid     int    `json:"grid,omitempty"`
	K        int    `json:"k,omitempty"`
	// N is the vector length, Workers the pool size, Chunks the number of
	// scheduled rectangles.
	N       int `json:"n"`
	Workers int `json:"workers"`
	Chunks  int `json:"chunks"`
	// MeasuredVolume is the vector elements actually shipped to workers;
	// PredictedVolume the strategy's closed form (2N·√(Σsᵢ/s₁) for hom);
	// RelError their relative disagreement.
	MeasuredVolume  float64 `json:"measuredVolume"`
	PredictedVolume float64 `json:"predictedVolume"`
	RelError        float64 `json:"relError"`
	// BytesMoved is MeasuredVolume in bytes (8 per float64 element).
	BytesMoved float64 `json:"bytesMoved"`
	// Makespan is the measured wall-clock seconds; CellsPerSec the
	// realized N²/Makespan throughput. Both vary run to run — see the
	// determinism caveats in EXPERIMENTS.md.
	Makespan    float64 `json:"makespan"`
	CellsPerSec float64 `json:"cellsPerSec"`
	// Utilization and Imbalance summarize the run's trace. Imbalance is
	// -1 when undefined (a worker recorded no compute time).
	Utilization float64 `json:"utilization"`
	Imbalance   float64 `json:"imbalance"`
	// Violations counts invariant-oracle findings; 0 in any valid file.
	Violations int `json:"violations"`
}

// RuntimeBenchFile is the BENCH_runtime.json payload.
type RuntimeBenchFile struct {
	Schema string `json:"schema"`
	Seed   int64  `json:"seed"`
	Quick  bool   `json:"quick"`
	// WorkPerSecond is the token-bucket rate scale of every run.
	WorkPerSecond float64             `json:"workPerSecond"`
	GoVersion     string              `json:"goVersion"`
	GOMAXPROCS    int                 `json:"gomaxprocs"`
	Entries       []RuntimeBenchEntry `json:"entries"`
}

// LinkBenchEntry is one strategy execution under a bandwidth-modeled
// master link — the measured volume-vs-makespan trade-off of Figure 2.
type LinkBenchEntry struct {
	// Platform names the speed profile, Speeds lists it.
	Platform string    `json:"platform"`
	Speeds   []float64 `json:"speeds"`
	// Strategy is "hom", "hom/k" or "het"; N the vector length.
	Strategy string `json:"strategy"`
	N        int    `json:"n"`
	// Bandwidth is the master link's aggregate rate in elements/second.
	Bandwidth float64 `json:"bandwidth"`
	// MeasuredVolume is the elements shipped, PredictedVolume the
	// strategy's closed form over the executed plan.
	MeasuredVolume  float64 `json:"measuredVolume"`
	PredictedVolume float64 `json:"predictedVolume"`
	// Makespan is the measured wall-clock seconds; CommTime the summed
	// modeled transfer seconds across workers.
	Makespan float64 `json:"makespan"`
	CommTime float64 `json:"commTime"`
	// OverlapFraction is the share of comm time hidden under compute by
	// double-buffered prefetch.
	OverlapFraction float64 `json:"overlapFraction"`
	// LinkUtilization is each worker's comm-busy fraction of the run.
	LinkUtilization []float64 `json:"linkUtilization"`
	// Violations counts invariant-oracle findings, the link-capacity
	// invariant included; 0 in any valid file.
	Violations int `json:"violations"`
}

// LinkBenchFile is the BENCH_link.json payload: the bandwidth sweep
// showing lower communication volume becoming lower makespan once the
// master link is the bottleneck.
type LinkBenchFile struct {
	Schema string `json:"schema"`
	Seed   int64  `json:"seed"`
	Quick  bool   `json:"quick"`
	// WorkPerSecond is the token-bucket rate scale of every run.
	WorkPerSecond float64          `json:"workPerSecond"`
	GoVersion     string           `json:"goVersion"`
	GOMAXPROCS    int              `json:"gomaxprocs"`
	Entries       []LinkBenchEntry `json:"entries"`
}

// SaveBenchLink writes the link sweep file as indented JSON.
func SaveBenchLink(path string, f LinkBenchFile) error {
	return saveJSON(path, f)
}

// LoadBenchLink reads a link sweep file.
func LoadBenchLink(path string) (LinkBenchFile, error) {
	var f LinkBenchFile
	err := loadJSON(path, &f)
	return f, err
}

// SaveBenchKernels writes the kernels bench file as indented JSON.
func SaveBenchKernels(path string, f KernelBenchFile) error {
	return saveJSON(path, f)
}

// LoadBenchKernels reads a kernels bench file.
func LoadBenchKernels(path string) (KernelBenchFile, error) {
	var f KernelBenchFile
	err := loadJSON(path, &f)
	return f, err
}

// SaveBenchRuntime writes the runtime bench file as indented JSON.
func SaveBenchRuntime(path string, f RuntimeBenchFile) error {
	return saveJSON(path, f)
}

// LoadBenchRuntime reads a runtime bench file.
func LoadBenchRuntime(path string) (RuntimeBenchFile, error) {
	var f RuntimeBenchFile
	err := loadJSON(path, &f)
	return f, err
}

func saveJSON(path string, v interface{}) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("results: marshal: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func loadJSON(path string, v interface{}) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("results: read: %w", err)
	}
	if err := json.Unmarshal(b, v); err != nil {
		return fmt.Errorf("results: parse %s: %w", path, err)
	}
	return nil
}
