package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// ViolationKind classifies what Check found wrong.
type ViolationKind int

// Violation kinds.
const (
	// BadSpan is a malformed span: NaN/Inf bounds, negative duration,
	// negative start, or negative data/work, or a span ending past the
	// recorded makespan.
	BadSpan ViolationKind = iota
	// OverlapCompute is two compute spans sharing CPU time on one worker —
	// the booking bug a broken executor exhibits first.
	OverlapCompute
	// OverlapComm is two transfers sharing one worker's link.
	OverlapComm
	// NonMonotone is a worker's span sequence going backwards in time
	// (per kind), or a marker at an invalid time.
	NonMonotone
	// WorkConservation is a broken work ledger: processed + unprocessed ≠
	// total, or the traced compute spans disagreeing with the executor's
	// reported totals.
	WorkConservation
	// CommVolume is a measured communication volume disagreeing with the
	// executor's shipping ledger or with an analytic bound
	// (Comm_hom/Comm_het/survivor bound).
	CommVolume
	// ImbalanceExceeded is a compute-time imbalance above the target
	// (Section 4.3's ≤1% rule for Comm_hom/k).
	ImbalanceExceeded
	// LinkCapacityExceeded is an instant at which the summed transfer
	// rate of the open comm spans exceeds the master link's aggregate
	// bandwidth — a run shipping data faster than the modeled network
	// admits.
	LinkCapacityExceeded
	// DuplicateCommit is one task committed (OK Compute span) more than
	// once — a broken first-writer-wins race under retries/speculation.
	// Losing copies must be recorded Wasted, crashed ones Killed; exactly
	// one OK span per task may exist.
	DuplicateCommit
)

// String implements fmt.Stringer.
func (k ViolationKind) String() string {
	switch k {
	case BadSpan:
		return "bad-span"
	case OverlapCompute:
		return "overlap-compute"
	case OverlapComm:
		return "overlap-comm"
	case NonMonotone:
		return "non-monotone"
	case WorkConservation:
		return "work-conservation"
	case CommVolume:
		return "comm-volume"
	case ImbalanceExceeded:
		return "imbalance"
	case LinkCapacityExceeded:
		return "link-capacity"
	case DuplicateCommit:
		return "duplicate-commit"
	default:
		return fmt.Sprintf("violation(%d)", int(k))
	}
}

// Violation is one broken invariant.
type Violation struct {
	Kind ViolationKind
	// Worker is the offending worker (-1 for run-global violations).
	Worker int
	// Task is the offending task (-1 when not applicable).
	Task int
	// Detail is the human-readable specifics.
	Detail string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	loc := ""
	if v.Worker >= 0 {
		loc = fmt.Sprintf(" worker %d", v.Worker)
	}
	if v.Task >= 0 {
		loc += fmt.Sprintf(" task %d", v.Task)
	}
	return fmt.Sprintf("%s:%s %s", v.Kind, loc, v.Detail)
}

// BoundKind selects how Expect.Bound constrains the measured volume.
type BoundKind int

// Bound kinds.
const (
	// BoundNone skips the analytic-bound check.
	BoundNone BoundKind = iota
	// BoundExact requires measured == Bound within Tol (relative) — the
	// Comm_hom closed form on homogeneous platforms.
	BoundExact
	// BoundUpper requires measured ≤ Bound·(1+Tol).
	BoundUpper
	// BoundLower requires measured ≥ Bound·(1−Tol) — e.g. the survivor
	// bound 2N·√(Σsᵢ/s₁) that any realizable re-plan must pay at least.
	BoundLower
)

// Expect carries the executor-reported ledger and analytic bounds Check
// verifies the timeline against. The zero value checks structure only.
type Expect struct {
	// HasWork enables the work-conservation checks below.
	HasWork bool
	// TotalWork is the N-equivalents submitted to the run.
	TotalWork float64
	// ProcessedWork is the work completed, each pool unit counted once
	// (winning copies only).
	ProcessedWork float64
	// UnprocessedWork is the pool work that never completed (a static
	// schedule's forfeited allocation; 0 for a resilient run that
	// finished). Conservation: Processed + Unprocessed = Total.
	UnprocessedWork float64
	// LostWork is the work destroyed mid-run by crashes (overhead beyond
	// TotalWork for executors that re-execute). Traced Killed spans may
	// undercount it (work lost before any span was cut) but never exceed
	// it.
	LostWork float64
	// WastedWork is the work burned by losing speculative copies.
	WastedWork float64

	// HasComm enables the shipping-ledger check: the timeline's total
	// comm volume must equal ShippedData within Tol.
	HasComm bool
	// ShippedData is the executor-reported total data shipped, waste
	// included.
	ShippedData float64

	// Bound is the analytic communication-volume reference (Comm_hom,
	// Comm_het, survivor bound); BoundKind selects the comparison and
	// BoundName labels the violation.
	Bound     float64
	BoundKind BoundKind
	BoundName string

	// ImbalanceTarget, when positive, caps the compute-time imbalance
	// (the paper's Comm_hom/k rule uses 0.01).
	ImbalanceTarget float64

	// ExactlyOnce, when set, requires every task id (≥ 0) to appear in at
	// most one OK Compute span across the whole timeline. Retries,
	// speculation and reclamation may re-run a task any number of times,
	// but only one copy may commit; the rest must be Wasted or Killed.
	ExactlyOnce bool

	// LinkCapacity, when positive, is the aggregate master-link bandwidth
	// in data units per second. Check sweeps every comm span (each open
	// span contributing its average rate Data/Duration) and flags any
	// instant whose summed rate exceeds the capacity — the one-port /
	// bounded-bandwidth invariant. A zero-duration span carrying data is
	// an infinite-rate transfer and always violates.
	LinkCapacity float64

	// Tol is the relative tolerance for every numeric comparison
	// (default 1e-9).
	Tol float64
}

// tolerance returns the effective relative tolerance.
func (e *Expect) tolerance() float64 {
	if e == nil || e.Tol <= 0 {
		return 1e-9
	}
	return e.Tol
}

// approxEqual reports a ≈ b within relative tolerance tol.
func approxEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*(math.Abs(a)+math.Abs(b)+1)
}

// overlapSlack is the absolute slack allowed between consecutive spans —
// floating-point booking arithmetic legitimately produces sub-1e-9
// overlaps.
const overlapSlack = 1e-9

// Check verifies the timeline's invariants and returns every violation
// found (nil when the trace is clean):
//
//   - structure: finite non-negative span bounds, End ≥ Start, no span
//     past the makespan, finite marker times;
//   - exclusivity: per worker, compute spans do not overlap (one CPU) and
//     comm spans do not overlap (one incoming link); a Comm span MAY
//     overlap a Compute span — that is multi-round pipelining, not a bug;
//   - monotone sim-time: per worker and kind, spans are recorded in
//     non-decreasing start order;
//   - with exp: work conservation (processed + unprocessed = total, traced
//     spans matching the reported ledger), the shipping ledger, the
//     analytic volume bound, and the imbalance target.
func Check(tl *Timeline, exp *Expect) []Violation {
	var vs []Violation
	tol := exp.tolerance()

	for w, spans := range tl.Spans {
		prevStart := map[SpanKind]float64{}
		prevEnd := map[SpanKind]float64{}
		for i, s := range spans {
			if bad := badSpan(s); bad != "" {
				vs = append(vs, Violation{Kind: BadSpan, Worker: w, Task: s.Task, Detail: fmt.Sprintf("span %d %s", i, bad)})
				continue
			}
			if s.End > tl.Makespan+overlapSlack {
				vs = append(vs, Violation{Kind: BadSpan, Worker: w, Task: s.Task,
					Detail: fmt.Sprintf("span %d ends at %v past makespan %v", i, s.End, tl.Makespan)})
			}
			if ps, seen := prevStart[s.Kind]; seen {
				if s.Start < ps-overlapSlack {
					vs = append(vs, Violation{Kind: NonMonotone, Worker: w, Task: s.Task,
						Detail: fmt.Sprintf("%s span %d starts at %v before previous start %v", s.Kind, i, s.Start, ps)})
				} else if s.Start < prevEnd[s.Kind]-overlapSlack {
					kind := OverlapCompute
					if s.Kind == Comm {
						kind = OverlapComm
					}
					vs = append(vs, Violation{Kind: kind, Worker: w, Task: s.Task,
						Detail: fmt.Sprintf("%s span %d starts at %v inside previous span ending %v", s.Kind, i, s.Start, prevEnd[s.Kind])})
				}
			}
			prevStart[s.Kind] = s.Start
			if e := prevEnd[s.Kind]; s.End > e {
				prevEnd[s.Kind] = s.End
			}
		}
	}
	for i, m := range tl.Marks {
		if math.IsNaN(m.Time) || math.IsInf(m.Time, 0) || m.Time < 0 {
			vs = append(vs, Violation{Kind: NonMonotone, Worker: m.Worker, Task: -1,
				Detail: fmt.Sprintf("marker %d (%s) at invalid time %v", i, m.Kind, m.Time)})
		}
	}

	if exp == nil {
		return vs
	}

	if exp.HasWork {
		if got := exp.ProcessedWork + exp.UnprocessedWork; !approxEqual(got, exp.TotalWork, tol) {
			vs = append(vs, Violation{Kind: WorkConservation, Worker: -1, Task: -1,
				Detail: fmt.Sprintf("processed %v + unprocessed %v = %v ≠ total %v", exp.ProcessedWork, exp.UnprocessedWork, got, exp.TotalWork)})
		}
		if got := tl.UsefulWork(); !approxEqual(got, exp.ProcessedWork, tol) {
			vs = append(vs, Violation{Kind: WorkConservation, Worker: -1, Task: -1,
				Detail: fmt.Sprintf("traced useful work %v ≠ reported processed %v", got, exp.ProcessedWork)})
		}
		if got := tl.WastedWork(); !approxEqual(got, exp.WastedWork, tol) {
			vs = append(vs, Violation{Kind: WorkConservation, Worker: -1, Task: -1,
				Detail: fmt.Sprintf("traced wasted work %v ≠ reported %v", got, exp.WastedWork)})
		}
		if got := tl.LostWork(); got > exp.LostWork*(1+tol)+tol {
			vs = append(vs, Violation{Kind: WorkConservation, Worker: -1, Task: -1,
				Detail: fmt.Sprintf("traced killed work %v exceeds reported lost %v", got, exp.LostWork)})
		}
	}

	measured := tl.CommVolume()
	if exp.HasComm && !approxEqual(measured, exp.ShippedData, tol) {
		vs = append(vs, Violation{Kind: CommVolume, Worker: -1, Task: -1,
			Detail: fmt.Sprintf("traced comm volume %v ≠ reported shipped %v", measured, exp.ShippedData)})
	}
	switch exp.BoundKind {
	case BoundExact:
		if !approxEqual(measured, exp.Bound, tol) {
			vs = append(vs, Violation{Kind: CommVolume, Worker: -1, Task: -1,
				Detail: fmt.Sprintf("traced comm volume %v ≠ %s = %v", measured, exp.boundName(), exp.Bound)})
		}
	case BoundUpper:
		if measured > exp.Bound*(1+tol) {
			vs = append(vs, Violation{Kind: CommVolume, Worker: -1, Task: -1,
				Detail: fmt.Sprintf("traced comm volume %v exceeds %s = %v", measured, exp.boundName(), exp.Bound)})
		}
	case BoundLower:
		if measured < exp.Bound*(1-tol) {
			vs = append(vs, Violation{Kind: CommVolume, Worker: -1, Task: -1,
				Detail: fmt.Sprintf("traced comm volume %v below %s = %v", measured, exp.boundName(), exp.Bound)})
		}
	}

	if exp.ImbalanceTarget > 0 {
		if e := tl.Imbalance(); e > exp.ImbalanceTarget*(1+tol) {
			vs = append(vs, Violation{Kind: ImbalanceExceeded, Worker: -1, Task: -1,
				Detail: fmt.Sprintf("compute imbalance %v above target %v", e, exp.ImbalanceTarget)})
		}
	}
	if exp.LinkCapacity > 0 {
		vs = append(vs, checkLinkCapacity(tl, exp.LinkCapacity, tol)...)
	}
	if exp.ExactlyOnce {
		vs = append(vs, checkExactlyOnce(tl)...)
	}
	return vs
}

// checkExactlyOnce flags every task id committed by more than one OK
// Compute span — the invariant a resilient executor must uphold no
// matter how many times retries, speculation or reclamation re-issued
// the task.
func checkExactlyOnce(tl *Timeline) []Violation {
	var vs []Violation
	committedBy := map[int]int{} // task → worker of the first OK commit
	for w, spans := range tl.Spans {
		for _, s := range spans {
			if s.Kind != Compute || s.Outcome != OK || s.Task < 0 {
				continue
			}
			if first, dup := committedBy[s.Task]; dup {
				vs = append(vs, Violation{Kind: DuplicateCommit, Worker: w, Task: s.Task,
					Detail: fmt.Sprintf("task committed twice (first by worker %d)", first)})
				continue
			}
			committedBy[s.Task] = w
		}
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i].Task < vs[j].Task })
	return vs
}

// checkLinkCapacity sweeps the comm spans of every worker and verifies
// that at no instant the summed average transfer rate exceeds the
// aggregate link bandwidth. Each span with positive duration contributes
// Data/Duration over [Start, End); span boundaries that touch exactly do
// not overlap (ends are processed before starts at equal times).
func checkLinkCapacity(tl *Timeline, capacity, tol float64) []Violation {
	var vs []Violation
	type event struct {
		t    float64
		rate float64 // positive at span start, negative at span end
	}
	var evs []event
	for w, spans := range tl.Spans {
		for i, s := range spans {
			if s.Kind != Comm || s.Data <= 0 {
				continue
			}
			if s.Duration() <= 0 {
				vs = append(vs, Violation{Kind: LinkCapacityExceeded, Worker: w, Task: s.Task,
					Detail: fmt.Sprintf("span %d ships %v data units in zero time (infinite rate, capacity %v)", i, s.Data, capacity)})
				continue
			}
			r := s.Data / s.Duration()
			evs = append(evs, event{s.Start, r}, event{s.End, -r})
		}
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].t != evs[j].t {
			return evs[i].t < evs[j].t
		}
		return evs[i].rate < evs[j].rate // ends before starts at equal times
	})
	run, worst, worstAt := 0.0, 0.0, 0.0
	for _, e := range evs {
		run += e.rate
		if run > worst {
			worst, worstAt = run, e.t
		}
	}
	if worst > capacity*(1+tol) {
		vs = append(vs, Violation{Kind: LinkCapacityExceeded, Worker: -1, Task: -1,
			Detail: fmt.Sprintf("aggregate transfer rate peaks at %v (t=%v), above link capacity %v", worst, worstAt, capacity)})
	}
	return vs
}

func (e *Expect) boundName() string {
	if e.BoundName == "" {
		return "bound"
	}
	return e.BoundName
}

// badSpan returns a description of what is malformed about the span, or
// "" for a well-formed one.
func badSpan(s Span) string {
	for _, f := range []struct {
		name  string
		value float64
	}{{"start", s.Start}, {"end", s.End}, {"data", s.Data}, {"work", s.Work}} {
		if math.IsNaN(f.value) || math.IsInf(f.value, 0) {
			return fmt.Sprintf("has non-finite %s %v", f.name, f.value)
		}
	}
	if s.Start < 0 {
		return fmt.Sprintf("starts at negative time %v", s.Start)
	}
	if s.End < s.Start {
		return fmt.Sprintf("has negative duration [%v,%v]", s.Start, s.End)
	}
	if s.Data < 0 || s.Work < 0 {
		return fmt.Sprintf("has negative volume (data %v, work %v)", s.Data, s.Work)
	}
	return ""
}

// Must converts a violation list into a single error (nil when clean) —
// for executors and experiments that want the oracle on their hot path.
func Must(vs []Violation) error {
	if len(vs) == 0 {
		return nil
	}
	lines := make([]string, len(vs))
	for i, v := range vs {
		lines[i] = v.String()
	}
	return fmt.Errorf("trace: %d invariant violation(s):\n  %s", len(vs), strings.Join(lines, "\n  "))
}
