package matmul

import (
	"errors"
	"sync"
)

// MultiplyWithLayout executes C = A·B with the Figure 3 ownership
// discipline realized in memory: one goroutine per processor computes
// exactly the C cells the layout assigns to it, reading the full A and B
// (which stand in for the broadcast rows/columns the comm accounting
// charges for). It is the end-to-end correctness anchor for the layout
// machinery: whatever CommVolume charges, the produced matrix must equal
// the dense kernels' result.
func MultiplyWithLayout(a, b *Matrix, l Layout) (*Matrix, error) {
	if err := checkMul(a, b); err != nil {
		return nil, err
	}
	if a.Rows != l.N() || b.Cols != l.N() || a.Cols != l.N() {
		return nil, errors.New("matmul: layout dimension must match square matrices")
	}
	n, p := l.N(), l.P()
	c := New(n, n)
	// Pre-compute each processor's cell list (the layout may be slow per
	// lookup; scanning once also checks total coverage).
	cells := make([][][2]int, p)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			q := l.OwnerOf(i, j)
			if q < 0 || q >= p {
				return nil, errors.New("matmul: layout returned an out-of-range owner")
			}
			cells[q] = append(cells[q], [2]int{i, j})
		}
	}
	var wg sync.WaitGroup
	for q := 0; q < p; q++ {
		if len(cells[q]) == 0 {
			continue
		}
		wg.Add(1)
		go func(mine [][2]int) {
			defer wg.Done()
			for _, ij := range mine {
				i, j := ij[0], ij[1]
				s := 0.0
				for k := 0; k < n; k++ {
					s += a.At(i, k) * b.At(k, j)
				}
				c.Set(i, j, s)
			}
		}(cells[q])
	}
	wg.Wait()
	return c, nil
}
