package mapreduce

import (
	"fmt"
	"sort"

	"nlfl/internal/dessim"
	"nlfl/internal/platform"
)

// ScheduleWithFailuresDES is the event-driven port of ScheduleWithFailures
// onto the shared dessim.Engine. It reproduces the epoch model's semantics
// exactly for scenarios whose failures hit distinct workers:
//
//   - between failures the pool drains demand-driven (idle live worker →
//     next pending task, lowest worker index first on ties);
//   - at a failure instant every live in-flight execution crossing the
//     instant bounces back to the pool (the epoch resynchronization), the
//     dead worker's completed outputs re-enter the pool as re-executions,
//     and the pool is re-sorted by task index;
//   - an execution finishing exactly at the failure instant counts as
//     completed (and, on the dying worker, completed-then-lost);
//   - once the job has completed, later failures are free.
//
// The one deliberate divergence: the epoch model lets a *duplicate*
// failure of an already-dead worker still bounce live in-flight work (an
// acausal artifact of its epoch boundaries), while this port treats it as
// the no-op it physically is. Cross-checks between the two models should
// therefore use failures on distinct workers.
func ScheduleWithFailuresDES(p *platform.Platform, tasks []TaskSpec, failures []Failure) (FaultResult, error) {
	for i, t := range tasks {
		if t.Data < 0 || t.Work < 0 {
			return FaultResult{}, fmt.Errorf("mapreduce: task %d has negative size", i)
		}
	}
	for _, f := range failures {
		if f.Worker < 0 || f.Worker >= p.P() {
			return FaultResult{}, fmt.Errorf("mapreduce: failure targets unknown worker %d", f.Worker)
		}
		if f.Time < 0 {
			return FaultResult{}, fmt.Errorf("mapreduce: failure at negative time %v", f.Time)
		}
	}
	fs := append([]Failure(nil), failures...)
	sort.SliceStable(fs, func(a, b int) bool { return fs[a].Time < fs[b].Time })

	res := FaultResult{TasksPerWorker: make([]int, p.P())}
	eng := dessim.NewEngine()
	dead := make([]bool, p.P())
	pending := make([]int, len(tasks))
	for i := range pending {
		pending[i] = i
	}
	type execution struct {
		task   int
		finish float64
	}
	type inflight struct {
		task   int
		finish float64
		handle *dessim.Handle
	}
	completed := make([][]execution, p.P())
	cur := make([]*inflight, p.P())
	jobFinished := false

	var dispatch func()
	dispatch = func() {
		for w := 0; w < p.P(); w++ {
			if dead[w] || cur[w] != nil || len(pending) == 0 {
				continue
			}
			w := w
			task := pending[0]
			pending = pending[1:]
			finish := eng.Now() + tasks[task].Work/p.Worker(w).Speed
			a := &inflight{task: task, finish: finish}
			cur[w] = a
			a.handle = eng.Schedule(finish, func() {
				cur[w] = nil
				completed[w] = append(completed[w], execution{task: a.task, finish: finish})
				dispatch()
			})
		}
	}

	// Failure events are scheduled before the initial dispatch so they win
	// the engine's FIFO tie-break: a failure at t=0 kills its worker before
	// any task is claimed, matching the epoch model's run(0) no-op.
	for _, f := range fs {
		f := f
		eng.At(f.Time, func() {
			if jobFinished {
				return // outputs already consumed; the failure is free
			}
			now := eng.Now()
			finished := len(pending) == 0
			for _, a := range cur {
				if a != nil && a.finish > now {
					finished = false
				}
			}
			if finished {
				// Executions finishing exactly now complete right after this
				// event; the job is done and later failures are free.
				jobFinished = true
				return
			}
			if dead[f.Worker] {
				return // duplicate failure of a dead worker: physical no-op
			}
			dead[f.Worker] = true
			for w, a := range cur {
				if a == nil {
					continue
				}
				if w == f.Worker {
					cur[w] = nil
					a.handle.Cancel()
					if a.finish <= now {
						// Completed exactly at the failure instant, then lost
						// with the worker's disk.
						res.Reexecutions++
						res.LostWork += tasks[a.task].Work
					}
					pending = append(pending, a.task)
					continue
				}
				if a.finish > now {
					// Epoch resynchronization: live in-flight work crossing
					// the failure boundary restarts from the boundary.
					cur[w] = nil
					a.handle.Cancel()
					pending = append(pending, a.task)
				}
			}
			lost := completed[f.Worker]
			completed[f.Worker] = nil
			for _, ex := range lost {
				res.LostWork += tasks[ex.task].Work
				pending = append(pending, ex.task)
				res.Reexecutions++
			}
			sort.Ints(pending)
			dispatch()
		})
	}
	eng.At(0, dispatch)
	eng.Run()

	remaining := len(pending)
	for _, a := range cur {
		if a != nil {
			remaining++
		}
	}
	if remaining > 0 {
		live := 0
		for _, d := range dead {
			if !d {
				live++
			}
		}
		if live == 0 {
			return res, fmt.Errorf("mapreduce: all workers dead with %d tasks pending", remaining)
		}
		return res, fmt.Errorf("mapreduce: %d tasks never completed", remaining)
	}
	for w, exs := range completed {
		res.TasksPerWorker[w] = len(exs)
		for _, ex := range exs {
			if ex.finish > res.Makespan {
				res.Makespan = ex.finish
			}
		}
	}
	return res, nil
}
