package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"nlfl/internal/results"
)

// capture redirects stdout while f runs and returns what was printed.
func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		buf := make([]byte, 0, 1<<16)
		tmp := make([]byte, 4096)
		for {
			n, err := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				break
			}
		}
		done <- string(buf)
	}()
	runErr := f()
	w.Close()
	os.Stdout = old
	out := <-done
	return out, runErr
}

func TestCLISubcommands(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want []string // substrings that must appear
	}{
		{"help", []string{"help"}, []string{"commands:", "fig4", "affinity"}},
		{"nonlinear", []string{"nonlinear", "-ps", "2,10"}, []string{"no free lunch", "0.9"}},
		{"analyze", []string{"analyze", "-kind", "power", "-alpha", "2", "-p", "100"},
			[]string{"not-divisible", "0.9900"}},
		{"analyze sort", []string{"analyze", "-kind", "sort", "-n", "1048576", "-p", "32"},
			[]string{"almost-divisible"}},
		{"rho", []string{"rho", "-ks", "1,16"}, []string{"measured ρ", "3.4"}},
		{"partition", []string{"partition", "-trials", "3"}, []string{"Ĉ/LB", "uniform[1,100]"}},
		{"outer", []string{"outer", "-p", "6"}, []string{"hom/k", "het:", "plan for"}},
		{"matmul", []string{"matmul", "-n", "32"}, []string{"naive kernel: true", "block-cyclic", "rect"}},
		{"mapreduce", []string{"mapreduce", "-demo", "6"}, []string{"naive-pairs", "correct=true"}},
		{"fig2", []string{"fig2", "-p", "4", "-w", "24", "-h", "8"}, []string{"half-perimeter", "+"}},
		{"affinity", []string{"affinity", "-p", "4", "-g", "10"},
			[]string{"no-cache", "cache", "affinity", "granularities"}},
		{"fig4 small", []string{"fig4", "-trials", "3", "-pmax", "20"},
			[]string{"Comm_het", "Comm_hom/k"}},
		{"fig4 csv", []string{"fig4", "-trials", "2", "-pmax", "10", "-csv"},
			[]string{"x,Comm_het"}},
		{"sort", []string{"sort", "-trials", "2"}, []string{"Theorem B.4", "log p/log N"}},
		{"bottleneck", []string{"bottleneck", "-p", "6"}, []string{"bandwidth", "Comm_hom/k"}},
		{"mrdlt", []string{"mrdlt", "-p", "4"}, []string{"equal split", "optimized", "speedup"}},
		{"polymul", []string{"polymul", "-n", "64"}, []string{"schoolbook", "karatsuba", "fft", "almost-divisible"}},
		{"adaptivity", []string{"adaptivity", "-p", "4", "-blocks", "64"},
			[]string{"residual speed", "static DLT", "demand-driven"}},
		{"gantt", []string{"gantt", "-p", "4", "-w", "40"}, []string{"#", "accomplishes"}},
		{"tree", []string{"tree", "-depth", "2", "-fanout", "2"},
			[]string{"nodes", "topology-free", "α=2"}},
		{"returns", []string{"returns", "-trials", "20"},
			[]string{"FIFO", "LIFO", "dominates"}},
		{"faults crash", []string{"faults", "-scenario", "crash", "-p", "6", "-tasks", "36", "-seed", "3"},
			[]string{"permanent crashes", "inflation", "dltLost", "vs bound", "in-flight chunks"}},
		{"faults straggler", []string{"faults", "-scenario", "straggler", "-p", "5", "-tasks", "30", "-seed", "2"},
			[]string{"slowed to 5%", "speculation", "backups", "no-free-lunch"}},
		{"faults flaky-link", []string{"faults", "-scenario", "flaky-link", "-p", "4", "-tasks", "24", "-seed", "4"},
			[]string{"drops 70%", "retries", "exponential backoff", "extraComm"}},
		{"trace resilient", []string{"trace", "-executor", "resilient", "-scenario", "crash", "-p", "4", "-tasks", "16", "-seed", "3"},
			[]string{"resilient executor", "P1", "invariants: ok", "useful work", "utilization"}},
		{"trace single-round", []string{"trace", "-executor", "single-round", "-scenario", "crash", "-p", "4", "-tasks", "16", "-seed", "3"},
			[]string{"single-round executor", "invariants: ok", "makespan"}},
		{"trace demand", []string{"trace", "-executor", "demand", "-p", "4", "-tasks", "16"},
			[]string{"demand executor", "invariants: ok"}},
		{"trace dlt", []string{"trace", "-executor", "dlt", "-p", "4", "-tasks", "16"},
			[]string{"dlt executor", "invariants: ok"}},
		{"trace sort", []string{"trace", "-executor", "sort", "-p", "4", "-tasks", "16"},
			[]string{"sort executor", "invariants: ok"}},
		{"trace flaky gantt", []string{"trace", "-executor", "resilient", "-scenario", "flaky-link", "-p", "4", "-tasks", "24", "-seed", "4", "-w", "60"},
			[]string{"%", "invariants: ok", "faults"}},
		{"recommend", []string{"recommend"},
			[]string{"← knee", "recommend 4 of 8 workers", "speedup 2.26×", "makespan 37.3 ms",
				"no slice of this fleet can beat 4.53×", "75% of the work undone", "speedup vs slice size"}},
		{"recommend unconstrained", []string{"recommend", "-bandwidth", "0", "-chart=false"},
			[]string{"recommend 8 of 8 workers", "0.00"}},
		{"recommend json", []string{"recommend", "-json"},
			[]string{`"knee": 4`, `"speedupBound"`, `"curve"`, `"unprocessedIfChunked"`}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			out, err := capture(t, func() error { return run(c.args) })
			if err != nil {
				t.Fatalf("run(%v): %v", c.args, err)
			}
			for _, want := range c.want {
				if !strings.Contains(out, want) {
					t.Errorf("output missing %q:\n%s", want, truncate(out, 800))
				}
			}
		})
	}
}

// TestCLIBench runs the measured-performance harness end to end in its
// reduced configuration, round-trips the emitted artifacts through the
// -validate mode, and checks that broken flags fail.
func TestCLIBench(t *testing.T) {
	dir := t.TempDir()
	out, err := capture(t, func() error {
		return run([]string{"bench", "-quick", "-seed", "42", "-out", dir})
	})
	if err != nil {
		t.Fatalf("bench run: %v", err)
	}
	for _, want := range []string{"kernels (autotuned tile", "runtime (rate", "hom/k", "het", "chaos sweep", "topology sweep", "crossover", "iterative sweep", "adaptive/oracle", "wrote"} {
		if !strings.Contains(out, want) {
			t.Errorf("bench output missing %q:\n%s", want, truncate(out, 800))
		}
	}
	out, err = capture(t, func() error {
		return run([]string{"bench", "-validate", "-out", dir})
	})
	if err != nil {
		t.Fatalf("bench -validate on freshly emitted artifacts: %v", err)
	}
	if !strings.Contains(out, "schema ok") {
		t.Errorf("validate output missing confirmation:\n%s", truncate(out, 800))
	}
	if _, err := capture(t, func() error {
		return run([]string{"bench", "-validate", "-out", t.TempDir()})
	}); err == nil {
		t.Error("bench -validate on an empty directory should fail")
	}
}

// TestCLIBenchChaos drives the chaos-only mode: the sweep must survive
// every fault class (the crash-at-t=0 edge case included), emit a
// BENCH_chaos.json that round-trips through -chaos -validate, and keep
// its volume ledger deterministic across reruns (wall-clock fields and
// retry counts are free to differ — see EXPERIMENTS.md).
func TestCLIBenchChaos(t *testing.T) {
	dirs := [2]string{t.TempDir(), t.TempDir()}
	var files [2]results.ChaosBenchFile
	for i, dir := range dirs {
		out, err := capture(t, func() error {
			return run([]string{"bench", "-chaos", "-quick", "-seed", "42", "-out", dir})
		})
		if err != nil {
			t.Fatalf("bench -chaos: %v\n%s", err, out)
		}
		for _, want := range []string{"chaos sweep", "crash-t0", "straggler", "flaky-link", "replanned", "wrote"} {
			if !strings.Contains(out, want) {
				t.Errorf("bench -chaos output missing %q:\n%s", want, truncate(out, 1200))
			}
		}
		files[i], err = results.LoadBenchChaos(dir + "/BENCH_chaos.json")
		if err != nil {
			t.Fatalf("emitted chaos artifact unreadable: %v", err)
		}
	}
	if len(files[0].Entries) != len(files[1].Entries) {
		t.Fatalf("entry counts differ across reruns: %d vs %d", len(files[0].Entries), len(files[1].Entries))
	}
	for i := range files[0].Entries {
		a, b := files[0].Entries[i], files[1].Entries[i]
		if a.Class != b.Class || a.Platform != b.Platform || a.Strategy != b.Strategy ||
			a.Chunks != b.Chunks || a.PlanVolume != b.PlanVolume {
			t.Errorf("entry %d geometry not deterministic: %+v vs %+v", i, a, b)
		}
	}

	out, err := capture(t, func() error {
		return run([]string{"bench", "-chaos", "-validate", "-out", dirs[0]})
	})
	if err != nil {
		t.Fatalf("bench -chaos -validate on freshly emitted artifact: %v", err)
	}
	if !strings.Contains(out, "BENCH_chaos.json: schema ok") {
		t.Errorf("chaos validate output missing confirmation:\n%s", truncate(out, 800))
	}
	if _, err := capture(t, func() error {
		return run([]string{"bench", "-chaos", "-validate", "-out", t.TempDir()})
	}); err == nil {
		t.Error("bench -chaos -validate on an empty directory should fail")
	}
}

// TestCLIBenchTopology drives the topology-only mode: the sweep must
// hold the crossover-shift gate (star yes, chain no), emit a
// BENCH_topology.json that round-trips through -topology -validate, and
// keep its volume geometry deterministic across reruns (makespans are
// free to differ — see EXPERIMENTS.md).
func TestCLIBenchTopology(t *testing.T) {
	dirs := [2]string{t.TempDir(), t.TempDir()}
	var files [2]results.TopologyBenchFile
	for i, dir := range dirs {
		out, err := capture(t, func() error {
			return run([]string{"bench", "-topology", "-quick", "-seed", "42", "-out", dir})
		})
		if err != nil {
			t.Fatalf("bench -topology: %v\n%s", err, out)
		}
		for _, want := range []string{"topology sweep", "star", "chain", "two-source",
			"crossover star", "crossover chain", "none (het never wins", "wrote"} {
			if !strings.Contains(out, want) {
				t.Errorf("bench -topology output missing %q:\n%s", want, truncate(out, 1200))
			}
		}
		files[i], err = results.LoadBenchTopology(dir + "/BENCH_topology.json")
		if err != nil {
			t.Fatalf("emitted topology artifact unreadable: %v", err)
		}
	}
	if len(files[0].Entries) != len(files[1].Entries) {
		t.Fatalf("entry counts differ across reruns: %d vs %d", len(files[0].Entries), len(files[1].Entries))
	}
	for i := range files[0].Entries {
		a, b := files[0].Entries[i], files[1].Entries[i]
		if a.Topology != b.Topology || a.Strategy != b.Strategy || a.Bandwidth != b.Bandwidth ||
			a.MeasuredVolume != b.MeasuredVolume || a.RelayVolume != b.RelayVolume {
			t.Errorf("entry %d geometry not deterministic: %+v vs %+v", i, a, b)
		}
	}
	for topo, bw := range map[string]float64{"star": 2e4, "chain": 0} {
		if files[0].Crossovers[topo] != bw {
			t.Errorf("crossover %s = %v, want %v", topo, files[0].Crossovers[topo], bw)
		}
	}

	out, err := capture(t, func() error {
		return run([]string{"bench", "-topology", "-validate", "-out", dirs[0]})
	})
	if err != nil {
		t.Fatalf("bench -topology -validate on freshly emitted artifact: %v", err)
	}
	if !strings.Contains(out, "BENCH_topology.json: schema ok") {
		t.Errorf("topology validate output missing confirmation:\n%s", truncate(out, 800))
	}
	if _, err := capture(t, func() error {
		return run([]string{"bench", "-topology", "-validate", "-out", t.TempDir()})
	}); err == nil {
		t.Error("bench -topology -validate on an empty directory should fail")
	}
}

func TestCLIErrors(t *testing.T) {
	cases := [][]string{
		{"nope"},
		{"bench", "-chaos", "-topology"},
		{"bench", "-service", "-topology"},
		{"bench", "-capacity", "-chaos"},
		{"bench", "-iterative", "-capacity"},
		{"iterate", "-mode", "bogus"},
		{"iterate", "-n", "0"},
		{"iterate", "-tie", "2"},
		{"iterate", "-speeds", "x"},
		{"iterate", "-drift-worker", "9"},
		{"iterate", "-drift-worker", "1", "-drift-factor", "0"},
		{"iterate", "-mode", "static", "-n", "8", "-tie", "0.9999", "-rounds", "2", "-rate", "4e5"},
		{"recommend", "-alpha", "0.5"},
		{"recommend", "-speeds", "x"},
		{"recommend", "-speeds", ""},
		{"recommend", "-theta", "0"},
		{"recommend", "-n", "0"},
		{"fig4", "-dist", "bogus"},
		{"nonlinear", "-alphas", "x"},
		{"nonlinear", "-ps", "x"},
		{"analyze", "-kind", "bogus"},
		{"rho", "-p", "7"},
		{"faults", "-scenario", "bogus"},
		{"faults", "-dist", "bogus"},
		{"trace", "-executor", "bogus"},
		{"trace", "-scenario", "bogus"},
		{"trace", "-executor", "dlt", "-scenario", "crash"},
		{"trace", "-dist", "bogus"},
		{"trace", "-p", "1"},
	}
	for _, args := range cases {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestCLIFlagHelpDoesNotError(t *testing.T) {
	// flag.ContinueOnError returns flag.ErrHelp for -h; the command should
	// surface it as an error without panicking.
	_, err := capture(t, func() error { return run([]string{"fig4", "-h"}) })
	if err == nil {
		t.Log("fig4 -h returned nil (accepted)") // flag prints usage either way
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

func TestCLISaveAndCompare(t *testing.T) {
	dir := t.TempDir()
	a := dir + "/a.json"
	b := dir + "/b.json"
	if _, err := capture(t, func() error {
		return run([]string{"fig4", "-trials", "2", "-pmax", "10", "-out", a})
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := capture(t, func() error {
		return run([]string{"fig4", "-trials", "2", "-pmax", "10", "-out", b})
	}); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error { return run([]string{"compare", a, b}) })
	if err != nil {
		t.Fatalf("identical records should compare clean: %v\n%s", err, out)
	}
	if !strings.Contains(out, "agree") {
		t.Errorf("missing agreement message:\n%s", out)
	}
	// A different run must be detected.
	c := dir + "/c.json"
	if _, err := capture(t, func() error {
		return run([]string{"fig4", "-trials", "3", "-pmax", "10", "-out", c})
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := capture(t, func() error { return run([]string{"compare", "-tol", "0.0001", a, c}) }); err == nil {
		t.Error("differing records should fail the comparison")
	}
	// Usage errors.
	if _, err := capture(t, func() error { return run([]string{"compare", a}) }); err == nil {
		t.Error("missing operand should fail")
	}
	if _, err := capture(t, func() error { return run([]string{"compare", a, dir + "/absent.json"}) }); err == nil {
		t.Error("missing file should fail")
	}
}

// Golden-style determinism: the same seed must reproduce byte-identical
// fault records for every scenario, and a different seed must not.
func TestCLIFaultsRecordsDeterministic(t *testing.T) {
	dir := t.TempDir()
	for _, scenario := range []string{"crash", "straggler", "flaky-link"} {
		a := dir + "/" + scenario + "-a.json"
		b := dir + "/" + scenario + "-b.json"
		for _, path := range []string{a, b} {
			if out, err := capture(t, func() error {
				return run([]string{"faults", "-scenario", scenario, "-p", "5", "-tasks", "20", "-seed", "7", "-out", path})
			}); err != nil {
				t.Fatalf("%s: %v\n%s", scenario, err, out)
			}
		}
		ra, err := os.ReadFile(a)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := os.ReadFile(b)
		if err != nil {
			t.Fatal(err)
		}
		if string(ra) != string(rb) {
			t.Errorf("%s: same seed produced different records", scenario)
		}
		if out, err := capture(t, func() error { return run([]string{"compare", a, b}) }); err != nil {
			t.Errorf("%s: self-compare failed: %v\n%s", scenario, err, out)
		}
	}
	// A different seed shifts the crash pattern.
	c := dir + "/crash-c.json"
	if _, err := capture(t, func() error {
		return run([]string{"faults", "-scenario", "crash", "-p", "5", "-tasks", "20", "-seed", "8", "-out", c})
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := capture(t, func() error {
		return run([]string{"compare", "-tol", "0.0001", dir + "/crash-a.json", c})
	}); err == nil {
		t.Error("different seeds should produce differing crash records")
	}
}

// Golden determinism for `nlfl trace`: the same seed must reproduce
// byte-identical stdout (Gantt + metrics) and byte-identical Chrome
// trace_event JSON; a different seed must shift the JSON.
func TestCLITraceGolden(t *testing.T) {
	dir := t.TempDir()
	for _, executor := range []string{"resilient", "single-round", "demand", "dlt", "sort"} {
		scenario := "none"
		if executor == "resilient" || executor == "single-round" {
			scenario = "crash"
		}
		var outs [2]string
		var jsons [2][]byte
		for i := range outs {
			path := dir + "/" + executor + string(rune('a'+i)) + ".json"
			out, err := capture(t, func() error {
				return run([]string{"trace", "-executor", executor, "-scenario", scenario,
					"-p", "4", "-tasks", "16", "-seed", "7", "-out", path})
			})
			if err != nil {
				t.Fatalf("%s: %v\n%s", executor, err, out)
			}
			// The two runs write to different paths; drop the trailing
			// "wrote <path>" line before comparing the rendering.
			outs[i] = strings.Split(out, "wrote ")[0]
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			jsons[i] = b
		}
		if outs[0] != outs[1] {
			t.Errorf("%s: same seed produced different stdout", executor)
		}
		if string(jsons[0]) != string(jsons[1]) {
			t.Errorf("%s: same seed produced different Chrome JSON", executor)
		}
		if !json.Valid(jsons[0]) {
			t.Errorf("%s: Chrome trace is not valid JSON", executor)
		}
		for _, want := range []string{`"displayTimeUnit"`, `"traceEvents"`, `"ph": "X"`, `"thread_name"`} {
			if !strings.Contains(string(jsons[0]), want) {
				t.Errorf("%s: Chrome trace missing %q", executor, want)
			}
		}
	}
	// A different seed shifts the platform and therefore the span layout.
	other := dir + "/resilient-seed8.json"
	if _, err := capture(t, func() error {
		return run([]string{"trace", "-executor", "resilient", "-scenario", "crash",
			"-p", "4", "-tasks", "16", "-seed", "8", "-out", other})
	}); err != nil {
		t.Fatal(err)
	}
	ra, err := os.ReadFile(dir + "/resilienta.json")
	if err != nil {
		t.Fatal(err)
	}
	rb, err := os.ReadFile(other)
	if err != nil {
		t.Fatal(err)
	}
	if string(ra) == string(rb) {
		t.Error("different seeds produced identical Chrome JSON")
	}
}

// Golden determinism for `nlfl iterate`: the residual trajectory is
// exact master-side float64 arithmetic, so the deterministic section of
// the output (everything above "control and timing") must be
// byte-identical across reruns AND across planning modes — only the
// measured makespans below it may differ.
func TestCLIIterateGolden(t *testing.T) {
	deterministic := func(out string) string {
		i := strings.Index(out, "control and timing")
		if i < 0 {
			t.Fatalf("output missing the control and timing section:\n%s", truncate(out, 800))
		}
		return out[:i]
	}
	residuals := func(out string) string {
		s := deterministic(out)
		i := strings.Index(s, "residuals (")
		if i < 0 {
			t.Fatalf("output missing the residuals section:\n%s", truncate(out, 800))
		}
		return s[i:]
	}
	args := func(mode string) []string {
		return []string{"iterate", "-n", "48", "-tie", "0.6", "-rate", "4e5",
			"-speeds", "1,2,3", "-rounds", "12", "-mode", mode,
			"-drift-worker", "2", "-drift-factor", "0.4", "-drift-round", "1"}
	}
	var adaptive [2]string
	for i := range adaptive {
		out, err := capture(t, func() error { return run(args("adaptive")) })
		if err != nil {
			t.Fatalf("iterate adaptive: %v\n%s", err, out)
		}
		adaptive[i] = out
	}
	if deterministic(adaptive[0]) != deterministic(adaptive[1]) {
		t.Errorf("rerun changed the deterministic section:\n--- a ---\n%s--- b ---\n%s",
			deterministic(adaptive[0]), deterministic(adaptive[1]))
	}
	for _, want := range []string{"drift: worker 2 slows to 0.40x from round 1",
		"converged in 7 rounds to dominant index 16", "replans", "total makespan"} {
		if !strings.Contains(adaptive[0], want) {
			t.Errorf("iterate output missing %q:\n%s", want, truncate(adaptive[0], 1200))
		}
	}
	// The same trajectory under every planning mode: static and oracle
	// must print residual-for-residual identical sections.
	for _, mode := range []string{"static", "oracle"} {
		out, err := capture(t, func() error { return run(args(mode)) })
		if err != nil {
			t.Fatalf("iterate %s: %v\n%s", mode, err, out)
		}
		if residuals(out) != residuals(adaptive[0]) {
			t.Errorf("%s residuals differ from adaptive:\n--- %s ---\n%s--- adaptive ---\n%s",
				mode, mode, residuals(out), residuals(adaptive[0]))
		}
	}
}

// TestCLIBenchIterative drives the iterative-only mode: the sweep must
// pass its own acceptance gate, emit a BENCH_iterative.json that
// round-trips through -iterative -validate, and keep the residual
// trajectory deterministic across reruns (makespans are free to differ —
// see EXPERIMENTS.md).
func TestCLIBenchIterative(t *testing.T) {
	dirs := [2]string{t.TempDir(), t.TempDir()}
	var files [2]results.IterativeBenchFile
	for i, dir := range dirs {
		out, err := capture(t, func() error {
			return run([]string{"bench", "-iterative", "-quick", "-seed", "42", "-out", dir})
		})
		if err != nil {
			t.Fatalf("bench -iterative: %v\n%s", err, out)
		}
		for _, want := range []string{"iterative sweep", "static", "adaptive", "oracle",
			"adaptive/oracle", "crash", "straggler", "link-slow", "wrote"} {
			if !strings.Contains(out, want) {
				t.Errorf("bench -iterative output missing %q:\n%s", want, truncate(out, 1200))
			}
		}
		files[i], err = results.LoadBenchIterative(dir + "/BENCH_iterative.json")
		if err != nil {
			t.Fatalf("emitted iterative artifact unreadable: %v", err)
		}
	}
	if len(files[0].Policies) != len(files[1].Policies) {
		t.Fatalf("policy counts differ across reruns: %d vs %d", len(files[0].Policies), len(files[1].Policies))
	}
	for i := range files[0].Policies {
		a, b := files[0].Policies[i], files[1].Policies[i]
		if a.Policy != b.Policy || a.Rounds != b.Rounds || a.Dominant != b.Dominant {
			t.Errorf("policy %d identity not deterministic: %+v vs %+v", i, a, b)
		}
		for r := range a.Residuals {
			if a.Residuals[r] != b.Residuals[r] {
				t.Errorf("policy %s round %d residual differs across reruns: %v vs %v",
					a.Policy, r, a.Residuals[r], b.Residuals[r])
			}
		}
	}

	out, err := capture(t, func() error {
		return run([]string{"bench", "-iterative", "-validate", "-out", dirs[0]})
	})
	if err != nil {
		t.Fatalf("bench -iterative -validate on freshly emitted artifact: %v", err)
	}
	if !strings.Contains(out, "BENCH_iterative.json: schema ok") {
		t.Errorf("iterative validate output missing confirmation:\n%s", truncate(out, 800))
	}
	if _, err := capture(t, func() error {
		return run([]string{"bench", "-iterative", "-validate", "-out", t.TempDir()})
	}); err == nil {
		t.Error("bench -iterative -validate on an empty directory should fail")
	}
}

func TestCLIAll(t *testing.T) {
	dir := t.TempDir()
	out, err := capture(t, func() error {
		return run([]string{"all", "-outdir", dir, "-trials", "3"})
	})
	if err != nil {
		t.Fatalf("all: %v\n%s", err, out)
	}
	for _, want := range []string{
		"e1-nonlinear.json", "fig4-uniform.json", "e12-partition-quality.json",
		"ext-affinity.json", "ext-bottleneck.json", "ext-faults.json",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("all output missing %q", want)
		}
		if _, err := os.Stat(dir + "/" + want); err != nil {
			t.Errorf("record %s not written: %v", want, err)
		}
	}
	// The saved records must load and self-compare clean.
	if _, err := capture(t, func() error {
		return run([]string{"compare", dir + "/e6-rho.json", dir + "/e6-rho.json"})
	}); err != nil {
		t.Errorf("self-compare failed: %v", err)
	}
}
