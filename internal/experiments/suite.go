package experiments

import (
	"fmt"

	"nlfl/internal/nldlt"
	"nlfl/internal/platform"
	"nlfl/internal/stats"
)

// SuiteConfig parameterizes a full reproduction run.
type SuiteConfig struct {
	// Trials is the Figure 4 trial count (paper: 100).
	Trials int
	// Seed drives all randomness.
	Seed int64
	// Quick shrinks the sweeps for smoke tests.
	Quick bool
}

// SuiteResult bundles every experiment's output — the programmatic
// equivalent of `nlfl all`, so downstream code (and the regression
// records) can consume one structured object.
type SuiteResult struct {
	NonLinear        []nldlt.FractionRow   `json:"nonlinear"`
	SortScaling      []SortScalingRow      `json:"sortScaling"`
	Rho              []RhoPoint            `json:"rho"`
	Fig4Homogeneous  []Fig4Point           `json:"fig4Homogeneous"`
	Fig4Uniform      []Fig4Point           `json:"fig4Uniform"`
	Fig4LogNormal    []Fig4Point           `json:"fig4LogNormal"`
	PartitionQuality []PartitionQualityRow `json:"partitionQuality"`
	Affinity         []AffinityPoint       `json:"affinity"`
	Bottleneck       []BottleneckPoint     `json:"bottleneck"`
	Adaptivity       []AdaptivityRow       `json:"adaptivity"`
	Returns          []ReturnsRow          `json:"returns"`
}

// RunSuite executes the whole evaluation with the given configuration.
func RunSuite(cfg SuiteConfig) (*SuiteResult, error) {
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("experiments: trials must be positive")
	}
	out := &SuiteResult{}
	var err error

	ps := []int{2, 4, 10, 32, 100}
	ns := []int{1 << 10, 1 << 14, 1 << 17, 1 << 20}
	fig4Ps := []int(nil)
	for p := 10; p <= 100; p += 10 {
		fig4Ps = append(fig4Ps, p)
	}
	gs := []int{10, 20, 40, 80}
	quality := []int{10, 25, 50, 100}
	if cfg.Quick {
		ps = []int{2, 10, 100}
		ns = []int{1 << 10, 1 << 14}
		fig4Ps = []int{10, 30}
		gs = []int{10, 20}
		quality = []int{10, 25}
	}

	if _, out.NonLinear, err = NonLinearTable(ps, []float64{1.5, 2, 3}, 1000); err != nil {
		return nil, err
	}
	if out.SortScaling, err = SortScaling(ns, 8, cfg.Seed); err != nil {
		return nil, err
	}
	if out.Rho, err = RhoSweep([]float64{1, 4, 16, 64, 100}, 20, 1000); err != nil {
		return nil, err
	}
	for _, panel := range []struct {
		profile platform.SpeedProfile
		dst     *[]Fig4Point
	}{
		{platform.ProfileHomogeneous, &out.Fig4Homogeneous},
		{platform.ProfileUniform, &out.Fig4Uniform},
		{platform.ProfileLogNormal, &out.Fig4LogNormal},
	} {
		fc := DefaultFig4Config(panel.profile)
		fc.Trials = cfg.Trials
		fc.Seed = cfg.Seed
		fc.Ps = fig4Ps
		if *panel.dst, err = Fig4(fc); err != nil {
			return nil, err
		}
	}
	if out.PartitionQuality, err = PartitionQuality(quality, cfg.Trials/2+1, cfg.Seed); err != nil {
		return nil, err
	}
	pl, err := platform.Generate(10, stats.Uniform{Lo: 1, Hi: 100}, stats.NewRNG(cfg.Seed))
	if err != nil {
		return nil, err
	}
	if out.Affinity, err = AffinitySweep(pl, 1000, gs); err != nil {
		return nil, err
	}
	if out.Bottleneck, err = Bottleneck(pl, 1000, 0.01, []float64{0.01, 0.1, 1, 10, 1000}); err != nil {
		return nil, err
	}
	if out.Adaptivity, err = Adaptivity(8, 800, 256, []float64{1, 0.5, 0.1, 0.02}); err != nil {
		return nil, err
	}
	if out.Returns, err = ReturnsSweep([]float64{0, 0.5, 1}, 6, cfg.Trials, cfg.Seed); err != nil {
		return nil, err
	}
	return out, nil
}

// Headline extracts the numbers the paper leads with, for quick sanity
// reports.
func (s *SuiteResult) Headline() map[string]float64 {
	h := map[string]float64{}
	for _, r := range s.NonLinear {
		if r.P == 100 && r.Alpha == 2 {
			h["undone-fraction-P100-α2"] = r.ClosedForm
		}
	}
	if n := len(s.Fig4Uniform); n > 0 {
		last := s.Fig4Uniform[n-1]
		h["fig4b-het-last"] = last.HetMean
		h["fig4b-homk-last"] = last.HomKMean
	}
	if n := len(s.Rho); n > 0 {
		h["rho-last"] = s.Rho[n-1].Measured
	}
	return h
}
