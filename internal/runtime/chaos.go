package runtime

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"nlfl/internal/faults"
	"nlfl/internal/matmul"
	"nlfl/internal/partition"
	"nlfl/internal/stats"
	"nlfl/internal/trace"
)

// Chaos configures the fault-injection layer of the measured runtime: the
// same faults.Scenario timelines the DES simulators execute, realized on
// real goroutines (see DESIGN.md §10 for the kind-by-kind mapping), plus
// the survival machinery — per-chunk leases with reclamation, capped
// exponential backoff on transfer retry, speculative re-execution with
// first-writer-wins commit, and PERI-SUM re-planning of a dead worker's
// rectangles onto the survivors.
type Chaos struct {
	// Scenario is the fault timeline, in live-run seconds from Run start.
	Scenario faults.Scenario
	// MaxRetries is the per-chunk-lineage recovery budget: how many times
	// a chunk's transfer may be re-attempted after a link drop, and how
	// many times a chunk's lineage may be reclaimed after crashes. A
	// chunk exceeding the budget fails the run with ErrTransferFailed
	// (drops) or ErrWorkerFailed (crashes); 0 means no budget at all.
	MaxRetries int
	// BackoffBase and BackoffMax bound the capped exponential backoff
	// between transfer retries, in seconds. Zero values select 1 ms and
	// 50 ms.
	BackoffBase float64
	BackoffMax  float64
	// SpeculateAfter, when positive, enables speculative re-execution: a
	// chunk a single worker has held for longer than this many seconds
	// may be issued to one additional worker; the first finished copy
	// commits, the other is recorded Wasted.
	SpeculateAfter float64
}

// enabled reports whether the run needs the resilient execution path.
func (c Chaos) enabled() bool { return len(c.Scenario.Events) > 0 || c.SpeculateAfter > 0 }

// validate rejects malformed chaos options for a p-worker pool.
func (c Chaos) validate(p int) error {
	if err := c.Scenario.Validate(p); err != nil {
		return err
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("runtime: negative retry budget %d", c.MaxRetries)
	}
	for _, v := range []struct {
		name  string
		value float64
	}{{"BackoffBase", c.BackoffBase}, {"BackoffMax", c.BackoffMax}, {"SpeculateAfter", c.SpeculateAfter}} {
		if v.value < 0 || math.IsNaN(v.value) || math.IsInf(v.value, 0) {
			return fmt.Errorf("runtime: invalid %s %v", v.name, v.value)
		}
	}
	return nil
}

// chaosWindow is one [start,end) fault window; factor holds the
// straggler/link multiplier or the drop probability, per kind.
type chaosWindow struct {
	start, end, factor float64
}

func (cw chaosWindow) covers(t float64) bool { return t >= cw.start && t < cw.end }

// chaosState is the scenario compiled into per-worker query tables. The
// deterministic parts (crash instants, slowdown and outage windows) are
// read-only after compile; the LinkDrop coin flips share one seeded RNG
// behind a mutex, so a run's flip *sequence* is reproducible even though
// which transfer consumes which flip depends on goroutine arrival order
// (see EXPERIMENTS.md on determinism).
type chaosState struct {
	crashAt []float64      // earliest Crash instant per worker (+Inf: none)
	slow    [][]chaosWindow // Straggler: compute-speed factors
	pause   [][]chaosWindow // Transient: full outages
	lslow   [][]chaosWindow // LinkSlow: bandwidth factors
	drop    [][]chaosWindow // LinkDrop: per-transfer loss probability

	mu  sync.Mutex
	rng *stats.RNG
}

func compileChaos(c Chaos, p int) *chaosState {
	cs := &chaosState{
		crashAt: make([]float64, p),
		slow:    make([][]chaosWindow, p),
		pause:   make([][]chaosWindow, p),
		lslow:   make([][]chaosWindow, p),
		drop:    make([][]chaosWindow, p),
		rng:     stats.NewRNG(c.Scenario.Seed),
	}
	for w := range cs.crashAt {
		cs.crashAt[w] = math.Inf(1)
	}
	for _, e := range c.Scenario.Events {
		switch e.Kind {
		case faults.Crash:
			if e.Time < cs.crashAt[e.Worker] {
				cs.crashAt[e.Worker] = e.Time
			}
		case faults.Transient:
			cs.pause[e.Worker] = append(cs.pause[e.Worker], chaosWindow{e.Time, e.Until, 0})
		case faults.Straggler:
			cs.slow[e.Worker] = append(cs.slow[e.Worker], chaosWindow{e.Time, e.Until, e.Factor})
		case faults.LinkSlow:
			cs.lslow[e.Worker] = append(cs.lslow[e.Worker], chaosWindow{e.Time, e.Until, e.Factor})
		case faults.LinkDrop:
			cs.drop[e.Worker] = append(cs.drop[e.Worker], chaosWindow{e.Time, e.Until, e.DropProb})
		}
	}
	return cs
}

// computeScale returns worker w's speed multiplier at instant t (the
// product of the straggler windows covering t). Sampled once per chunk:
// a window boundary crossing mid-chunk does not re-rate the chunk.
func (cs *chaosState) computeScale(w int, t float64) float64 {
	f := 1.0
	for _, win := range cs.slow[w] {
		if win.covers(t) {
			f *= win.factor
		}
	}
	return f
}

// pausedUntil reports whether worker w is inside a transient outage at t
// and, if so, when the latest covering outage ends.
func (cs *chaosState) pausedUntil(w int, t float64) (until float64, paused bool) {
	for _, win := range cs.pause[w] {
		if win.covers(t) && win.end > until {
			until, paused = win.end, true
		}
	}
	return until, paused
}

// linkScale is the masterLink.slowdown hook: the bandwidth multiplier
// for a transfer to worker w booked at instant t.
func (cs *chaosState) linkScale(w int, t float64) float64 {
	f := 1.0
	for _, win := range cs.lslow[w] {
		if win.covers(t) {
			f *= win.factor
		}
	}
	return f
}

// dropTransfer flips the seeded coin for a transfer to worker w starting
// at instant t; true means the payload is lost (each covering LinkDrop
// window flips independently).
func (cs *chaosState) dropTransfer(w int, t float64) bool {
	for _, win := range cs.drop[w] {
		if !win.covers(t) {
			continue
		}
		cs.mu.Lock()
		u := cs.rng.Float64()
		cs.mu.Unlock()
		if u < win.factor {
			return true
		}
	}
	return false
}

// replanOwnedChunk maps a dead worker's owned rectangle onto the
// survivors: the same PERI-SUM construction PlanHet runs on the unit
// square is re-run on the survivor speeds, its rectangles are scaled
// into the lost chunk's bounds, and the coordinates are snapped with the
// consistent rounding rule of core.SnapRect (shared boundaries round
// identically), so the pieces tile the rectangle exactly; pieces snapped
// to zero cells vanish without leaving gaps. Survivor owners[Index] owns
// each piece. Falls back to re-issuing the whole rectangle ownerless
// when no survivor partition can be built. Replanned pieces carry
// Task −1; chaosQueue.reclaim allocates fresh ids.
func replanOwnedChunk(c Chunk, owners []int, speeds []float64) []Chunk {
	c.Task = -1
	if len(owners) == 0 {
		c.Owner = -1
		return []Chunk{c}
	}
	part, err := partition.PeriSum(speeds)
	if err != nil {
		c.Owner = -1
		return []Chunk{c}
	}
	h := float64(c.RowHi - c.RowLo)
	wd := float64(c.ColHi - c.ColLo)
	var out []Chunk
	for _, rect := range part.Rects {
		pc := Chunk{
			Task:  -1,
			RowLo: c.RowLo + int(math.Round(rect.Y*h)),
			RowHi: c.RowLo + int(math.Round((rect.Y+rect.H)*h)),
			ColLo: c.ColLo + int(math.Round(rect.X*wd)),
			ColHi: c.ColLo + int(math.Round((rect.X+rect.W)*wd)),
			Owner: owners[rect.Index],
		}
		if pc.RowHi > c.RowHi {
			pc.RowHi = c.RowHi
		}
		if pc.ColHi > c.ColHi {
			pc.ColHi = c.ColHi
		}
		if pc.Cells() <= 0 {
			continue
		}
		out = append(out, pc)
	}
	if len(out) == 0 {
		c.Owner = -1
		return []Chunk{c}
	}
	return out
}

// chaosPoll is how often an idle worker re-polls the queue while
// uncommitted cells remain (waiting for a straggler to finish or a
// crash to free reclaimable work).
const chaosPoll = 500 * time.Microsecond

// sleepCtx sleeps for d or until ctx is cancelled; false means cancelled.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// die takes worker w permanently out of the pool at its crash instant:
// marks the timeline, wastes the data shipped for whatever chunk died
// with it, reclaims everything it was solely responsible for back into
// the queue (re-planning owned rectangles onto the survivors), and fails
// the run if a reclaimed chunk's retry budget is exhausted or nobody
// survives to pick the work up.
func (r *runner) die(w int, cs *chaosState, cq *chaosQueue, inflightData float64) {
	r.live.Mark(trace.Marker{Kind: trace.MarkCrash, Worker: w, Time: r.live.Now(), Note: "permanent"})
	replan := func(c Chunk) []Chunk {
		if c.Owner < 0 {
			// Ownerless chunks keep their identity: any survivor may
			// claim them from the shared shards.
			return []Chunk{c}
		}
		var owners []int
		var speeds []float64
		for v, dead := range cq.dead { // safe: replan runs under cq.mu
			if !dead {
				owners = append(owners, v)
				speeds = append(speeds, r.opts.Speeds[v])
			}
		}
		return replanOwnedChunk(c, owners, speeds)
	}
	cells, extra, over := cq.reclaim(w, r.opts.Chaos.MaxRetries, replan)
	r.mu.Lock()
	r.degraded++
	r.reclaimedCells += cells
	r.replanExtra += extra
	r.wastedData += inflightData
	r.mu.Unlock()
	if over != nil {
		r.fail(fmt.Errorf("%w: worker %d crashed holding chunk %d with its retry budget exhausted", ErrWorkerFailed, w, over.Task))
		return
	}
	if cq.allDead() {
		r.fail(fmt.Errorf("%w: all %d workers crashed before the run completed", ErrWorkerFailed, len(cq.dead)))
	}
}

// chaosWorker is the resilient worker loop: poll the lease queue, ship
// with retry/backoff under link faults, stall through transient outages,
// compute at the (possibly straggler-scaled) throttled rate into a
// private scratch, and race for the first-writer-wins commit. Crash
// instants are honored at every blocking point; a dead worker's work is
// reclaimed by die.
func (r *runner) chaosWorker(w int, cs *chaosState, cq *chaosQueue) {
	bucket := newTokenBucket(r.opts.Speeds[w]*r.rate, r.opts.Burst)
	led := &r.ledgers[w]
	backoffBase := r.opts.Chaos.BackoffBase
	if backoffBase <= 0 {
		backoffBase = 1e-3
	}
	backoffMax := r.opts.Chaos.BackoffMax
	if backoffMax < backoffBase {
		backoffMax = math.Max(backoffBase, 50e-3)
	}
	// Sized once from the plan's largest chunk; replanned pieces are
	// sub-rectangles of lost chunks, so the bound survives reclamation.
	aBuf := make([]float64, 0, r.maxRowSpan)
	bBuf := make([]float64, 0, r.maxColSpan)
	scratch := make([]float64, 0, r.maxCells)

	for {
		if r.ctx.Err() != nil {
			return
		}
		now := r.live.Now()
		if now >= cs.crashAt[w] {
			r.die(w, cs, cq, 0)
			return
		}
		c, st := cq.next(w, now)
		if st == queueDone {
			return
		}
		if st == queueWait {
			if !sleepCtx(r.ctx, chaosPoll) {
				return
			}
			continue
		}
		if hook := r.opts.testHookChunkStart; hook != nil {
			hook(w, c)
		}
		data := float64(c.Data())

		// Ship the chunk's inputs, retrying dropped transfers with capped
		// exponential backoff. A drop still occupies the booked link
		// window before the loss is noticed (the faults.LinkDrop
		// contract), so flaky links burn both volume and time.
		retries := 0
		backoff := backoffBase
		for {
			t0 := r.live.Now()
			if t0 >= cs.crashAt[w] {
				r.die(w, cs, cq, 0)
				return
			}
			dropped := cs.dropTransfer(w, t0)
			var t1 float64
			if r.net != nil && r.net.constrained(w) {
				del, relays := r.net.book(w, data)
				t0, t1 = del.start, del.end
				if !dropped {
					aBuf = append(aBuf[:0], r.a[c.RowLo:c.RowHi]...)
					bBuf = append(bBuf[:0], r.b[c.ColLo:c.ColHi]...)
				}
				if !r.net.wait(r.ctx, t1) {
					return
				}
				// Relays are recorded for dropped attempts too: the payload
				// crossed the intermediate hops and burned their bandwidth
				// before the loss was noticed at delivery.
				for _, h := range relays {
					r.live.AddRelay(trace.Relay{Edge: h.edge, Dest: w, Start: h.start, End: h.end,
						Data: data, Task: c.Task})
				}
			} else {
				if !dropped {
					aBuf = append(aBuf[:0], r.a[c.RowLo:c.RowHi]...)
					bBuf = append(bBuf[:0], r.b[c.ColLo:c.ColHi]...)
				}
				t1 = r.live.Now()
			}
			if !dropped {
				r.live.Add(w, trace.Span{Kind: trace.Comm, Start: t0, End: t1, Data: data, Task: c.Task})
				r.perData[w] += data
				break
			}
			r.live.Add(w, trace.Span{Kind: trace.Comm, Start: t0, End: t1, Data: data, Task: c.Task, Outcome: trace.Dropped})
			r.live.Mark(trace.Marker{Kind: trace.MarkDrop, Worker: w, Time: t1, Note: fmt.Sprintf("task %d", c.Task)})
			r.perData[w] += data
			led.retried++
			led.wastedData += data
			retries++
			if retries > r.opts.Chaos.MaxRetries {
				r.fail(fmt.Errorf("%w: worker %d lost chunk %d on %d consecutive transfer attempts", ErrTransferFailed, w, c.Task, retries))
				return
			}
			if !sleepCtx(r.ctx, time.Duration(backoff*float64(time.Second))) {
				return
			}
			backoff = math.Min(backoff*2, backoffMax)
		}

		// Transient outage: the worker stalls (inputs survive, wall-clock
		// passes) until the window clears — unless its crash lands first.
		for {
			t := r.live.Now()
			if t >= cs.crashAt[w] {
				r.die(w, cs, cq, data)
				return
			}
			until, paused := cs.pausedUntil(w, t)
			if !paused {
				break
			}
			stall := math.Min(until, cs.crashAt[w]) - t
			if !sleepCtx(r.ctx, time.Duration(stall*float64(time.Second))) {
				return
			}
		}

		// Compute into a private scratch buffer. Speculative duplicates
		// run concurrently, so writing out.Data before winning the commit
		// race would be a data race even with identical values; only the
		// winner copies its scratch out. Straggler windows scale the
		// token cost (sampled at chunk start); the crash instant bounds
		// the token wait, realizing death mid-chunk.
		cells := float64(c.Cells())
		t0 := r.live.Now()
		scale := cs.computeScale(w, t0)
		budget := time.Duration(-1)
		if !math.IsInf(cs.crashAt[w], 1) {
			budget = time.Duration(math.Max(0, cs.crashAt[w]-t0) * float64(time.Second))
		}
		finished := bucket.acquireWithin(cells/scale, budget)
		if finished {
			if cap(scratch) < c.Cells() {
				scratch = make([]float64, c.Cells())
			}
			scratch = scratch[:c.Cells()]
			fillChunkInto(scratch, aBuf, bBuf, c)
		}
		t1 := r.live.Now()
		if !finished || t1 >= cs.crashAt[w] {
			r.live.Add(w, trace.Span{Kind: trace.Compute, Start: t0, End: t1, Work: cells, Task: c.Task, Outcome: trace.Killed})
			r.noteLost(cells)
			r.die(w, cs, cq, data)
			return
		}
		won, specWin := cq.commit(c.Task, w)
		if !won {
			r.live.Add(w, trace.Span{Kind: trace.Compute, Start: t0, End: t1, Work: cells, Task: c.Task, Outcome: trace.Wasted})
			led.wastedData += data
			led.wastedWork += cells
			continue
		}
		commitChunk(r.out, scratch, c)
		r.live.Add(w, trace.Span{Kind: trace.Compute, Start: t0, End: t1, Work: cells, Task: c.Task})
		r.perCells[w] += cells
		led.committed = append(led.committed, c)
		led.committedVolume += data
		if specWin {
			led.specWins++
		}
	}
}

// fillChunkInto computes the chunk's rectangle of the outer product into
// a worker-private scratch (row-major, width ColHi−ColLo), tiling like
// fillChunk.
func fillChunkInto(dst []float64, aBuf, bBuf []float64, c Chunk) {
	bs := matmul.AutotuneTile()
	wd := c.ColHi - c.ColLo
	for jj := 0; jj < wd; jj += bs {
		jMax := min(jj+bs, wd)
		bTile := bBuf[jj:jMax]
		for i, av := range aBuf {
			row := dst[i*wd+jj : i*wd+jMax]
			for j, bv := range bTile {
				row[j] = av * bv
			}
		}
	}
}

// commitChunk copies a winning scratch into the output. Exactly one copy
// of each task wins (chaosQueue.commit) and committed chunks never
// overlap (checkTiling audits the committed set after the run), so
// winners write disjoint cells and need no lock.
func commitChunk(out *matmul.Matrix, scratch []float64, c Chunk) {
	wd := c.ColHi - c.ColLo
	for i := 0; i < c.RowHi-c.RowLo; i++ {
		base := (c.RowLo+i)*out.Cols + c.ColLo
		copy(out.Data[base:base+wd], scratch[i*wd:(i+1)*wd])
	}
}
