package service

import (
	"fmt"
	"sort"

	nrt "nlfl/internal/runtime"
	"nlfl/internal/trace"
)

// assignment is one chunk of one job handed to a worker.
type assignment struct {
	j *job
	c nrt.Chunk
}

// next is the scheduling step: housekeeping (expired deadlines,
// cancellations, due chaos crashes), then the policy's job order, then
// the first job that has a chunk for worker w. Everything runs under
// fleet.mu; transfers and compute happen outside, in serve.
func (f *Fleet) next(w int) (assignment, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	now := f.now()
	f.housekeepLocked(now)
	disc, _ := f.cfg.Policy.order()
	for _, j := range f.orderedLocked(disc, now) {
		if j.inSlice[w] && !j.deadFor[w] {
			if c, ok := f.takeLocked(j, w, now); ok {
				if j.startAt < 0 {
					j.startAt = now
				}
				j.serving++
				return assignment{j: j, c: c}, true
			}
		}
		if disc == dFIFO {
			// Head-of-line exclusivity: the oldest unfinished job owns the
			// fleet; nothing later is touched until it finishes.
			break
		}
	}
	return assignment{}, false
}

// housekeepLocked retires expired/cancelled jobs and fires due
// job-scoped crashes. Crashes fire lazily at scheduling steps, so a due
// crash takes effect at the next handout even if the doomed worker is
// busy elsewhere (its own serve path honors the same instant).
func (f *Fleet) housekeepLocked(now float64) {
	for _, j := range append([]*job(nil), f.active...) {
		if j.terminal() {
			continue
		}
		if err := j.ctx.Err(); err != nil {
			f.finalizeLocked(j, fmt.Errorf("service: job %d (tenant %q): %w", j.id, j.tenant, err))
			continue
		}
		if j.chaos == nil || j.startAt < 0 {
			continue
		}
		rel := now - j.startAt
		for _, w := range j.slice {
			if j.terminal() {
				break
			}
			if !j.deadFor[w] && j.chaos.crashDue(w, rel) {
				f.jobDeathLocked(j, w)
			}
		}
	}
}

// orderedLocked returns the active jobs in service order. FIFO keeps
// admission order. The other policies order first by the owning tenant's
// attained service (fair share: the tenant served least comes first, so
// one tenant's flood queues behind its own jobs, not everyone's), then
// by the policy key, then by id for determinism.
func (f *Fleet) orderedLocked(disc discipline, now float64) []*job {
	if disc == dFIFO || len(f.active) < 2 {
		return f.active
	}
	jobs := append([]*job(nil), f.active...)
	key := func(j *job) float64 {
		switch disc {
		case dSRPT:
			// Remaining work, aged down while waiting: small jobs overtake,
			// big ones cannot starve.
			return j.remainingCells() - f.cfg.AgingCellsPerSec*(now-j.submitAt)
		default: // dInterleaved
			// Least attained service, aged down over the job's lifetime.
			// Without the aging term a sustained arrival stream starves the
			// oldest jobs: every fresh job starts at attained 0 and outranks
			// a half-served one forever. Aging makes seniority win
			// eventually, bounding the tail while young jobs still
			// round-robin.
			return j.committedCells - f.cfg.AgingCellsPerSec*(now-j.submitAt)
		}
	}
	sort.SliceStable(jobs, func(a, b int) bool {
		ja, jb := jobs[a], jobs[b]
		if ta, tb := f.accounts[ja.tenant].ServedCells, f.accounts[jb.tenant].ServedCells; ta != tb {
			return ta < tb
		}
		if ka, kb := key(ja), key(jb); ka != kb {
			return ka < kb
		}
		return ja.id < jb.id
	})
	return jobs
}

// takeLocked leases job j's next chunk to worker w: w's owned backlog,
// then the shared pool, then — with speculation enabled — the stalest
// chunk another worker has held past the threshold.
func (f *Fleet) takeLocked(j *job, w int, now float64) (nrt.Chunk, bool) {
	if j.cellsLeft == 0 {
		return nrt.Chunk{}, false
	}
	if j.bhead[w] < len(j.backlog[w]) {
		c := j.backlog[w][j.bhead[w]]
		j.bhead[w]++
		j.leases[c.Task] = &lease{c: c, holders: []int{w}, first: w, since: now}
		return c, true
	}
	if j.shead < len(j.shared) {
		c := j.shared[j.shead]
		j.shead++
		j.leases[c.Task] = &lease{c: c, holders: []int{w}, first: w, since: now}
		return c, true
	}
	if j.specAfter > 0 {
		var best *lease
		for _, l := range j.leases {
			if len(l.holders) != 1 || l.holders[0] == w {
				continue
			}
			if now-l.since < j.specAfter {
				continue
			}
			if best == nil || l.since < best.since || (l.since == best.since && l.c.Task < best.c.Task) {
				best = l
			}
		}
		if best != nil {
			best.holders = append(best.holders, w)
			return best.c, true
		}
	}
	return nrt.Chunk{}, false
}

// commitLocked resolves the first-writer-wins race for worker w's
// finished copy of chunk c. won=false means the work is Wasted (a lost
// speculative race, or the job went terminal mid-compute); specWin marks
// a successful speculation.
func (f *Fleet) commitLocked(j *job, w int, c nrt.Chunk) (won, specWin bool) {
	if j.terminal() || j.deadFor[w] || j.committed[c.Task] {
		return false, false
	}
	l := j.leases[c.Task]
	if l == nil {
		return false, false
	}
	j.committed[c.Task] = true
	delete(j.leases, c.Task)
	j.cellsLeft -= c.Cells()
	return true, l.first != w
}

// jobDeathLocked kills worker w *for job j only*: reclaims the un-issued
// remainder of its owned backlog and every lease it alone held,
// re-plans owned rectangles onto the job's surviving slice (PERI-SUM,
// exactly as the single-run chaos queue does), strikes the worker's
// health record, and fails the job if a chunk's retry budget is
// exhausted or no slice worker survives. The worker itself keeps
// serving every other job.
func (f *Fleet) jobDeathLocked(j *job, w int) {
	if j.terminal() || j.deadFor[w] {
		return
	}
	j.deadFor[w] = true
	j.aliveLeft--
	j.degraded++
	j.tl.Mark(trace.Marker{Kind: trace.MarkCrash, Worker: w, Time: f.now(), Note: "job-scoped"})
	f.strikeLocked(w)

	lost := append([]nrt.Chunk(nil), j.backlog[w][j.bhead[w]:]...)
	j.bhead[w] = len(j.backlog[w])
	for task, l := range j.leases {
		keep := l.holders[:0]
		for _, h := range l.holders {
			if h != w {
				keep = append(keep, h)
			}
		}
		l.holders = keep
		if len(l.holders) == 0 {
			delete(j.leases, task)
			lost = append(lost, l.c)
		}
	}
	sort.Slice(lost, func(a, b int) bool { return lost[a].Task < lost[b].Task })

	var owners []int
	var speeds []float64
	for _, v := range j.slice {
		if !j.deadFor[v] {
			owners = append(owners, v)
			speeds = append(speeds, f.speeds[v])
		}
	}
	for _, c := range lost {
		gen := j.recovered[c.Task] + 1
		if gen > j.maxRetries {
			f.finalizeLocked(j, fmt.Errorf("%w: worker %d crashed holding chunk %d with its retry budget exhausted", ErrJobFailed, w, c.Task))
			return
		}
		j.reclaimedCells += c.Cells()
		j.replanExtra -= float64(c.Data())
		var pieces []nrt.Chunk
		if c.Owner < 0 {
			// Ownerless chunks keep their identity: any survivor claims them.
			pieces = []nrt.Chunk{c}
		} else {
			pieces = nrt.ReplanOwned(c, owners, speeds)
		}
		for _, pc := range pieces {
			if pc.Task < 0 {
				pc.Task = j.nextTask
				j.nextTask++
			}
			j.recovered[pc.Task] = gen
			j.replanExtra += float64(pc.Data())
			if pc.Owner >= 0 && pc.Owner < len(j.inSlice) && j.inSlice[pc.Owner] && !j.deadFor[pc.Owner] && pc.Owner != w {
				j.backlog[pc.Owner] = append(j.backlog[pc.Owner], pc)
			} else {
				pc.Owner = -1
				j.shared = append(j.shared, pc)
			}
		}
	}
	if j.aliveLeft == 0 {
		f.finalizeLocked(j, fmt.Errorf("%w: all %d workers of the job's slice crashed", ErrJobFailed, len(j.slice)))
		return
	}
	f.wakeAll()
}
